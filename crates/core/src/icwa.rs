//! The Iterated Closed World Assumption (ICWA), Gelfond, Przymusinska &
//! Przymusinski \[12\], for disjunctive *stratified* databases.
//!
//! Given a stratification `⟨S₁, …, S_r⟩` (see
//! [`ddb_logic::Database::stratification`]) and a set `Z` of varying atoms,
//! ICWA applies ECWA layer by layer and intersects (the characterization
//! of \[12, §6\] the paper quotes):
//!
//! `ICWA(DB) = ⋂ᵢ ECWA_{Pᵢ; Zᵢ}(DB₁ ∪ … ∪ DBᵢ)` with `Pᵢ = Sᵢ ∖ Z`,
//! `Zᵢ = Sᵢ₊₁ ∪ … ∪ S_r ∪ Z` and `Qᵢ` the lower strata — i.e. a model must
//! be ⟨Pᵢ;Zᵢ⟩-minimal for every *prefix* of the layered database (negated
//! body atoms are read clausally, which is exactly the paper's "move each
//! ¬x in the body to the head").
//!
//! Membership of a model in `ICWA(DB)` is `r` oracle calls (one
//! ⟨P;Z⟩-minimality check per stratum) — the guess-and-check shape behind
//! the paper's Πᵖ₂ upper bound for inference (Theorem 4.1); hardness comes
//! from the degenerate stratification `S = ⟨V⟩`, where ICWA = ECWA = EGCWA
//! on positive databases (Theorem 4.2). For stratified databases without
//! integrity clauses, ICWA is consistent (`∃ model` is `O(1)` — the
//! paper's "stratifiability asserts consistency").

use ddb_logic::cnf::CnfBuilder;
use ddb_logic::{Atom, Database, Formula, Interpretation, Literal};
use ddb_models::{minimal, Cost, Partition};
use ddb_obs::{budget, Governed};
use ddb_sat::Solver;

/// The per-stratum reasoning context: prefix databases and partitions.
pub struct Layers {
    prefixes: Vec<Database>,
    partitions: Vec<Partition>,
}

impl Layers {
    /// Builds the ICWA layering from a stratification and a set of varying
    /// atoms `z` (atoms never closed off; pass the empty set for the plain
    /// ICWA).
    pub fn new(db: &Database, strata: &[Vec<Atom>], z: &Interpretation) -> Self {
        let n = db.num_atoms();
        let layer_rules = db.layers(strata);
        let mut prefixes = Vec::with_capacity(strata.len());
        let mut partitions = Vec::with_capacity(strata.len());
        let mut prefix = Database::new(db.symbols().clone());
        let mut lower = Interpretation::empty(n);
        for (i, stratum) in strata.iter().enumerate() {
            for rule in &layer_rules[i] {
                prefix.add_rule(rule.clone());
            }
            prefixes.push(prefix.clone());
            // Pᵢ = Sᵢ ∖ Z ; Zᵢ = S_{i+1..} ∪ Z ; Qᵢ = lower strata ∖ Z.
            let mut p = Interpretation::from_atoms(n, stratum.iter().copied());
            p.difference_with(z);
            let mut q = lower.clone();
            q.difference_with(z);
            let mut zi = Interpretation::full(n);
            zi.difference_with(&p);
            zi.difference_with(&q);
            partitions.push(Partition::new(p, q, zi));
            lower.union_with(&Interpretation::from_atoms(n, stratum.iter().copied()));
        }
        Layers {
            prefixes,
            partitions,
        }
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether there are no strata (empty vocabulary).
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// The `i`-th prefix database `DB₁ ∪ … ∪ DBᵢ`.
    pub fn prefix(&self, i: usize) -> &Database {
        &self.prefixes[i]
    }

    /// The `i`-th partition ⟨Pᵢ; Qᵢ; Zᵢ⟩.
    pub fn partition(&self, i: usize) -> &Partition {
        &self.partitions[i]
    }
}

/// Whether `m ∈ ICWA(DB)`: ⟨Pᵢ;Zᵢ⟩-minimal model of every prefix —
/// `r` oracle calls.
pub fn is_icwa_model(layers: &Layers, m: &Interpretation, cost: &mut Cost) -> Governed<bool> {
    for i in 0..layers.len() {
        if !minimal::is_pz_minimal_model(layers.prefix(i), m, layers.partition(i), cost)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Visits the ICWA models one at a time: enumerate models of the full
/// database falsifying nothing (all models), check layer-wise minimality,
/// block each examined model exactly. Each round starts with a budget
/// checkpoint, so an exhausted [`ddb_obs::Budget`] interrupts between
/// rounds.
pub fn for_each_icwa_model(
    db: &Database,
    layers: &Layers,
    extra: Option<&Formula>,
    cost: &mut Cost,
    mut visit: impl FnMut(&Interpretation) -> bool,
) -> Governed<()> {
    let n = db.num_atoms();
    let mut b = CnfBuilder::new(n);
    b.add_database(db);
    if let Some(f) = extra {
        b.assert_formula(f);
    }
    let cnf = b.finish();
    let mut candidates = Solver::from_cnf(&cnf);
    candidates.ensure_vars(cnf.num_vars.max(n));
    let mut run = |cost: &mut Cost, candidates: &mut Solver| -> Governed<()> {
        loop {
            budget::checkpoint()?;
            if !candidates.solve()?.is_sat() {
                return Ok(());
            }
            let model = {
                let full = candidates.model();
                let mut m = Interpretation::empty(n);
                for a in full.iter().filter(|a| a.index() < n) {
                    m.insert(a);
                }
                m
            };
            if is_icwa_model(layers, &model, cost)? && !visit(&model) {
                return Ok(());
            }
            // Block this exact model (projected).
            let blocking: Vec<Literal> = (0..n)
                .map(|i| {
                    let a = Atom::new(i as u32);
                    Literal::with_sign(a, !model.contains(a))
                })
                .collect();
            if blocking.is_empty() || !candidates.add_clause(&blocking) {
                return Ok(());
            }
        }
    };
    let result = run(cost, &mut candidates);
    cost.absorb(&candidates);
    result
}

/// All ICWA models, sorted (enumerative; test/example sized).
pub fn models(db: &Database, layers: &Layers, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("icwa.models");
    let mut out = Vec::new();
    for_each_icwa_model(db, layers, None, cost, |m| {
        out.push(m.clone());
        true
    })?;
    out.sort();
    Ok(out)
}

/// Literal inference `ICWA(DB) ⊨ ℓ`.
pub fn infers_literal(
    db: &Database,
    layers: &Layers,
    lit: Literal,
    cost: &mut Cost,
) -> Governed<bool> {
    let _span = ddb_obs::span("icwa.infers_literal");
    infers_formula(
        db,
        layers,
        &Formula::literal(lit.atom(), lit.is_positive()),
        cost,
    )
}

/// Formula inference `ICWA(DB) ⊨ F`: search a countermodel among the
/// ICWA models (guess a model of `DB ∧ ¬F`, verify layer-wise minimality
/// with `r` oracle calls — the paper's Theorem 4.1 upper-bound shape).
pub fn infers_formula(
    db: &Database,
    layers: &Layers,
    f: &Formula,
    cost: &mut Cost,
) -> Governed<bool> {
    let _span = ddb_obs::span("icwa.infers_formula");
    let negated = f.clone().negated();
    let mut holds = true;
    for_each_icwa_model(db, layers, Some(&negated), cost, |_| {
        holds = false;
        false
    })?;
    Ok(holds)
}

/// Model existence `ICWA(DB) ≠ ∅`. `O(1)` for stratified databases
/// without integrity clauses (stratifiability asserts consistency \[12\]);
/// otherwise decided by the enumeration loop.
pub fn has_model(db: &Database, layers: &Layers, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("icwa.has_model");
    if !db.has_integrity_clauses() {
        return Ok(true);
    }
    let mut found = false;
    for_each_icwa_model(db, layers, None, cost, |_| {
        found = true;
        false
    })?;
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    fn layers_of(db: &Database) -> Layers {
        let strata = db.stratification().expect("stratified");
        Layers::new(db, &strata, &Interpretation::empty(db.num_atoms()))
    }

    fn interp(db: &Database, names: &[&str]) -> Interpretation {
        Interpretation::from_atoms(
            db.num_atoms(),
            names.iter().map(|n| db.symbols().lookup(n).unwrap()),
        )
    }

    #[test]
    fn degenerate_stratification_is_egcwa() {
        // Positive DB with S = ⟨V⟩: ICWA = EGCWA = MM (Theorem 4.2's
        // degenerate case).
        let db = parse_program("a | b. c :- a, b.").unwrap();
        let strata = vec![(0..db.num_atoms()).map(|i| Atom::new(i as u32)).collect()];
        let layers = Layers::new(&db, &strata, &Interpretation::empty(db.num_atoms()));
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &layers, &mut cost).unwrap(),
            crate::egcwa::models(&db, &mut cost).unwrap()
        );
    }

    #[test]
    fn stratified_negation_iterates() {
        // a. c :- not b. — strata ⟨{a,b},{c}⟩-ish; ICWA model: {a, c}.
        let db = parse_program("a. c :- not b.").unwrap();
        let layers = layers_of(&db);
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &layers, &mut cost).unwrap(),
            vec![interp(&db, &["a", "c"])]
        );
        let b = db.symbols().lookup("b").unwrap();
        assert!(infers_literal(&db, &layers, b.neg(), &mut cost).unwrap());
    }

    #[test]
    fn disjunctive_stratified_matches_perfect() {
        // ICWA was introduced to capture PERF on stratified databases.
        for src in [
            "a. c :- not b.",
            "a | b. c :- not a.",
            "p | q. r :- not p. s :- not q.",
            "a. b :- not a. c | d :- not b.",
        ] {
            let db = parse_program(src).unwrap();
            let layers = layers_of(&db);
            let mut cost = Cost::new();
            assert_eq!(
                models(&db, &layers, &mut cost).unwrap(),
                crate::perf::models(&db, &mut cost).unwrap(),
                "program: {src}"
            );
        }
    }

    #[test]
    fn formula_inference() {
        let db = parse_program("a | b. c :- not a.").unwrap();
        let layers = layers_of(&db);
        let mut cost = Cost::new();
        let icwa_models = models(&db, &layers, &mut cost).unwrap();
        for text in ["a | b", "c -> b", "!(a & c)", "!c", "a"] {
            let f = parse_formula(text, db.symbols()).unwrap();
            let expected = icwa_models.iter().all(|m| f.eval(m));
            assert_eq!(
                infers_formula(&db, &layers, &f, &mut cost).unwrap(),
                expected,
                "{text}"
            );
        }
    }

    #[test]
    fn consistency_without_integrity_is_constant() {
        let db = parse_program("a | b. c :- not a.").unwrap();
        let layers = layers_of(&db);
        let mut cost = Cost::new();
        assert!(has_model(&db, &layers, &mut cost).unwrap());
        assert_eq!(cost.sat_calls, 0);
    }

    #[test]
    fn integrity_clauses_can_empty_icwa() {
        let db = parse_program("a. :- a.").unwrap();
        let layers = layers_of(&db);
        let mut cost = Cost::new();
        assert!(!has_model(&db, &layers, &mut cost).unwrap());
        assert!(models(&db, &layers, &mut cost).unwrap().is_empty());
    }

    #[test]
    fn varying_atoms_are_not_closed() {
        // a | b with Z = {b}: layer partition minimizes a only; models
        // where b floats freely survive.
        let db = parse_program("a | b.").unwrap();
        let strata = db.stratification().unwrap();
        let z = interp(&db, &["b"]);
        let layers = Layers::new(&db, &strata, &z);
        let mut cost = Cost::new();
        let nb = parse_formula("!b", db.symbols()).unwrap();
        assert!(!infers_formula(&db, &layers, &nb, &mut cost).unwrap());
        let na = parse_formula("!a", db.symbols()).unwrap();
        assert!(infers_formula(&db, &layers, &na, &mut cost).unwrap());
    }
}
