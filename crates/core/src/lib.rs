//! # ddb-core — the ten semantics for disjunctive databases
//!
//! Executable decision procedures for every semantics studied in
//! *Complexity Aspects of Various Semantics for Disjunctive Databases*
//! (Eiter & Gottlob, PODS 1993), over the `ddb-logic`/`ddb-sat`/`ddb-models`
//! substrate:
//!
//! | module | semantics | characterization implemented |
//! |---|---|---|
//! | [`gcwa`] | Generalized CWA (Minker) | `GCWA(DB) = {M ⊨ DB : ∀x. MM(DB) ⊨ ¬x ⇒ M ⊨ ¬x}` |
//! | [`egcwa`] | Extended GCWA (Yahya & Henschen) | `EGCWA(DB) = MM(DB)` |
//! | [`ccwa`] | Careful CWA (Gelfond & Przymusinska) | GCWA relative to `MM(DB;P;Z)` |
//! | [`ecwa`] | Extended CWA ≡ circumscription | `ECWA(DB) = MM(DB;P;Z)` |
//! | [`ddr`] | Disjunctive Database Rule ≡ WGCWA | `T_DB ↑ ω` occurrence closure |
//! | [`pws`] | Possible Worlds ≡ Possible Models | least models of split programs |
//! | [`perf`] | Perfect models (Przymusinski) | priority relation + preference check |
//! | [`icwa`] | Iterated CWA | `⋂ᵢ ECWA_{Pᵢ;…}(DB₁∪…∪DBᵢ)` along a stratification |
//! | [`dsm`] | Disjunctive stable models | `M ∈ MM(DB^M)` (GL-reduct) |
//! | [`pdsm`] | Partial (3-valued) disjunctive stable models | 3-valued reduct + truth-minimal 3-valued models |
//!
//! Every module exposes the paper's three decision problems —
//! `infers_literal`, `infers_formula`, `has_model` (is the semantics
//! non-empty for `DB`?) — plus a `models` enumerator used by tests and
//! examples, all threading a [`ddb_models::Cost`] for oracle accounting.
//! The [`dispatch`] module gives a uniform, enum-indexed entry point used
//! by the benchmark harness.
//!
//! Beyond the paper's ten semantics:
//!
//! * [`cwa`] — Reiter's CWA, the baseline of §3.1;
//! * [`wfs`] — the well-founded semantics (polynomial) that PDSM extends;
//! * [`supported`] — supported models (Clark completion) for normal
//!   programs, behind the Schaerf results in the paper's related work;
//! * [`witness`] — countermodel extraction and brave inference for every
//!   semantics;
//! * [`profile`] — the observed 10×3 oracle-call matrix next to the
//!   paper's predicted complexity classes (backs `ddb profile`);
//! * [`planner`] — the bridge to the static query planner of
//!   `ddb_analysis::plan`: derives each semantics' routing traits and
//!   plan trees, so every routing decision dispatch takes is reified in
//!   one auditable structure (backs `ddb explain`);
//! * [`slicing`] — execution of the query-relevant slicing and
//!   splitting-set routes the planner decides, shrinking the database a
//!   query reasons over (backs `ddb slice` and the
//!   `route.slice*`/`route.split*` counters);
//! * [`parallel`] — component-parallel model existence over dependency
//!   islands and batched formula queries on the budget-inheriting worker
//!   pool (backs `--threads` and the `route.islands`/`pool.*` counters);
//! * [`reduct`] — the Gelfond–Lifschitz and three-valued reducts shared
//!   by DSM/PDSM/WFS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ccwa;
pub mod cwa;
pub mod ddr;
pub mod dispatch;
pub mod dsm;
pub mod ecwa;
pub mod egcwa;
pub mod gcwa;
pub mod icwa;
pub mod parallel;
pub mod pdsm;
pub mod perf;
pub mod planner;
pub mod profile;
pub mod pws;
pub mod reduct;
pub mod route;
pub mod slicing;
pub mod supported;
pub mod wfs;
pub mod witness;

pub use dispatch::{Enumeration, RoutingMode, SemanticsConfig, SemanticsId, Unsupported, Verdict};
pub use parallel::infers_formulas_batch;
