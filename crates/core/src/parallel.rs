//! Component-parallel evaluation and batched queries.
//!
//! Two coarse-grained parallel surfaces, both built on the zero-dependency
//! worker pool ([`ddb_obs::run_indexed`]) and both **deterministic by
//! construction** — answers, model sets and oracle-call totals are
//! byte-identical at every [`SemanticsConfig::threads`] width:
//!
//! * **Island decomposition** (`islands_has_model`): the weakly-connected
//!   dependency islands of [`ddb_analysis::islands`] share no atom and no
//!   rule, so the database is their disjoint union and every semantics in
//!   the paper factors over it as a product. Model existence is then the
//!   conjunction of per-island existence, and each island is an
//!   independent job. The decomposition is taken *regardless* of the
//!   configured width (width only sets how many OS threads chew on the job
//!   list), there is **no short-circuiting** across islands, and verdicts
//!   and [`Cost`]s are folded strictly in island order.
//! * **Batched queries** ([`infers_formulas_batch`]): many formulas against
//!   one database share a single parse/classification/applicability pass;
//!   each formula is then an independent pool job whose `(Verdict, Cost)`
//!   comes back in submission order.
//!
//! Workers inherit the caller's ambient [`ddb_obs::Budget`] through the
//! cross-thread [`ddb_obs::BudgetHandle`]: deadlines and caps are shared
//! (split atomically, first-come first-served), a parent trip cancels
//! every worker, and counter totals merge back deterministically.

use crate::dispatch::{SemanticsConfig, Unsupported, Verdict};
use ddb_analysis::project_slice;
use ddb_logic::{Database, Formula};
use ddb_models::Cost;
use ddb_obs::{Governed, Interrupted};

/// Model existence over the weakly-connected islands of `db`, evaluated on
/// the worker pool. Returns `Ok(None)` when the database has fewer than two
/// islands (nothing to decompose — the caller falls through to its
/// sequential routes).
///
/// Soundness: islands partition both atoms and rules, so a model of `db`
/// is exactly a union of models, one per island, for every semantics here
/// (the product admission of [`crate::slicing`]). Hence `db` has a model
/// iff every island does. A definitely-empty island decides the whole
/// query `False` even when sibling islands were interrupted; otherwise any
/// interrupted island makes the query `Unknown` (the first one in island
/// order is reported, independent of scheduling).
pub(crate) fn islands_has_model(
    cfg: &SemanticsConfig,
    db: &Database,
    cost: &mut Cost,
) -> Governed<Option<bool>> {
    let parts = ddb_analysis::islands(db);
    if parts.len() < 2 {
        return Ok(None);
    }
    ddb_obs::counter_bump("route.islands", 1);
    ddb_obs::counter_bump("route.islands.components", parts.len() as u64);
    let icfg = crate::slicing::inner(cfg);
    let jobs: Vec<_> = parts
        .iter()
        .map(|island| {
            let (sub, _) = project_slice(db, island);
            let icfg = icfg.clone();
            move || {
                let mut c = Cost::new();
                let v = icfg.has_model(&sub, &mut c);
                (v, c)
            }
        })
        .collect();
    let results = ddb_obs::run_indexed(cfg.threads, jobs);
    // Fold in island order: costs merge unconditionally (every job ran to
    // its own completion or trip), False beats Unknown, the first
    // interrupt in island order is the one reported.
    let mut empty_island = false;
    let mut first_interrupt: Option<Interrupted> = None;
    for (v, c) in results {
        cost.merge(&c);
        match v {
            Ok(Verdict::True) => {}
            Ok(Verdict::False) => empty_island = true,
            Ok(Verdict::Unknown(i)) => {
                // `has_model` already counted this degradation via
                // `note_interrupt`; just remember the earliest one.
                first_interrupt.get_or_insert(i);
            }
            // Unreachable in practice: the caller checked applicability on
            // the whole database and islands only restrict it. Abandon the
            // route rather than guess.
            Err(_) => return Ok(None),
        }
    }
    if empty_island {
        return Ok(Some(false));
    }
    match first_interrupt {
        Some(i) => Err(i),
        None => Ok(Some(true)),
    }
}

/// Decides [`SemanticsConfig::infers_formula`] for many formulas against
/// one database, sharing a single applicability/classification pass and
/// evaluating the formulas concurrently on `cfg.threads` workers
/// ([`SemanticsConfig::threads`]).
///
/// The result vector is index-aligned with `formulas` (workers return
/// indexed results; the pool re-assembles them in submission order), so the
/// output is byte-identical to a sequential loop at any width. Each job
/// runs with an inline (width-1) configuration — the parallelism budget is
/// spent across formulas, not nested inside one.
pub fn infers_formulas_batch(
    cfg: &SemanticsConfig,
    db: &Database,
    formulas: &[Formula],
) -> Result<Vec<(Verdict, Cost)>, Unsupported> {
    // Reject inapplicable semantics once, before spawning anything.
    cfg.check_applicable(db)?;
    ddb_obs::counter_bump("pool.batch.formulas", formulas.len() as u64);
    let job_cfg = cfg.clone().with_threads(1);
    let jobs: Vec<_> = formulas
        .iter()
        .map(|f| {
            let job_cfg = job_cfg.clone();
            move || {
                let mut c = Cost::new();
                let v = job_cfg.infers_formula(db, f, &mut c);
                (v, c)
            }
        })
        .collect();
    ddb_obs::run_indexed(cfg.threads, jobs)
        .into_iter()
        .map(|(v, c)| v.map(|v| (v, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::SemanticsId;
    use ddb_logic::parse::{parse_formula, parse_program};
    use ddb_obs::Budget;

    fn two_island_db() -> Database {
        parse_program("a | b. c :- a. c :- b. x | y. :- x, y.").unwrap()
    }

    #[test]
    fn island_route_answers_existence() {
        let db = two_island_db();
        for id in SemanticsId::ALL {
            for threads in [1, 2, 8] {
                let cfg = SemanticsConfig::new(id).with_threads(threads);
                let mut cost = Cost::new();
                let Ok(v) = cfg.has_model(&db, &mut cost) else {
                    continue; // DDR/PWS reject the negative constraint? (no negation here)
                };
                assert_eq!(v, true, "{id} at {threads} threads");
            }
        }
    }

    #[test]
    fn empty_island_decides_false() {
        // Second island is unsatisfiable: x|y forced, both forbidden.
        let db = parse_program("a | b. x | y. :- x. :- y.").unwrap();
        for threads in [1, 4] {
            let cfg = SemanticsConfig::new(SemanticsId::Dsm).with_threads(threads);
            let mut cost = Cost::new();
            assert_eq!(cfg.has_model(&db, &mut cost).unwrap(), false);
        }
    }

    #[test]
    fn island_counters_fire_at_every_width() {
        let db = two_island_db();
        for threads in [1, 2] {
            let before = ddb_obs::thread_counter_total("route.islands");
            let cfg = SemanticsConfig::new(SemanticsId::Egcwa).with_threads(threads);
            let mut cost = Cost::new();
            cfg.has_model(&db, &mut cost).unwrap();
            assert!(
                ddb_obs::thread_counter_total("route.islands") > before,
                "decomposition must be taken at width {threads}"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_loop() {
        let db = two_island_db();
        let texts = ["c", "!c", "x | y", "a & x", "!(a & b)"];
        let formulas: Vec<Formula> = texts
            .iter()
            .map(|t| parse_formula(t, db.symbols()).unwrap())
            .collect();
        for id in SemanticsId::ALL {
            let seq_cfg = SemanticsConfig::new(id);
            let seq: Vec<_> = formulas
                .iter()
                .map(|f| {
                    let mut c = Cost::new();
                    let v = seq_cfg.infers_formula(&db, f, &mut c).unwrap();
                    (v, c.sat_calls)
                })
                .collect();
            for threads in [1, 3, 8] {
                let cfg = SemanticsConfig::new(id).with_threads(threads);
                let got = infers_formulas_batch(&cfg, &db, &formulas).unwrap();
                let got: Vec<_> = got.into_iter().map(|(v, c)| (v, c.sat_calls)).collect();
                assert_eq!(got, seq, "{id} at {threads} threads");
            }
        }
    }

    #[test]
    fn batch_rejects_inapplicable_semantics_up_front() {
        let db = parse_program("a :- not b.").unwrap();
        let f = parse_formula("a", db.symbols()).unwrap();
        let cfg = SemanticsConfig::new(SemanticsId::Ddr).with_threads(4);
        assert!(infers_formulas_batch(&cfg, &db, &[f]).is_err());
    }

    #[test]
    fn exhausted_budget_degrades_islands_to_unknown() {
        let db = two_island_db();
        let _g = Budget::unlimited().with_max_oracle_calls(0).install();
        let cfg = SemanticsConfig::new(SemanticsId::Egcwa).with_threads(2);
        let mut cost = Cost::new();
        let v = cfg.has_model(&db, &mut cost).unwrap();
        assert!(matches!(v, Verdict::Unknown(_)), "got {v}");
    }
}
