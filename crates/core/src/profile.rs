//! Observability profiles: run a decision problem under every semantics
//! and report observed oracle usage next to the paper's predicted
//! complexity class.
//!
//! The empirical claim being checked is the one behind Eiter & Gottlob's
//! Tables 1–2: the position of a (semantics, problem) pair in the
//! polynomial hierarchy shows up operationally as the *pattern of NP-oracle
//! (SAT) calls* its decision procedure makes. A coNP cell needs one
//! refutation call; a Πᵖ₂ cell runs a counterexample-guided loop whose
//! rounds each cost oracle calls; a Δᵖ₃[O(log n)] cell binary-searches over
//! a Σᵖ₂ oracle. [`profile_all`] measures all thirty cells of that matrix
//! on a concrete database, producing the table the `ddb profile`
//! subcommand prints.

use crate::dispatch::{SemanticsConfig, SemanticsId, Verdict};
use ddb_logic::{Database, Formula, Literal};
use ddb_models::Cost;
use ddb_obs::json::Json;
use ddb_obs::{Budget, Interrupted};
use std::time::Instant;

/// The paper's three decision problems.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Problem {
    /// Inference of a literal: `DB ⊢_sem L`.
    Literal,
    /// Inference of an arbitrary formula: `DB ⊢_sem F`.
    Formula,
    /// Model existence: is the semantics non-empty for `DB`?
    Existence,
}

impl Problem {
    /// All three problems, in the paper's column order.
    pub const ALL: [Problem; 3] = [Problem::Literal, Problem::Formula, Problem::Existence];

    /// Short column label.
    pub fn name(self) -> &'static str {
        match self {
            Problem::Literal => "lit",
            Problem::Formula => "form",
            Problem::Existence => "exist",
        }
    }
}

/// The complexity class Eiter & Gottlob's Table 2 (general disjunctive
/// deductive databases) assigns to a (semantics, problem) cell.
///
/// These strings agree with the paper-claim column of the benchmark
/// `tables` binary; the profile output prints them beside the observed
/// oracle counts so the two can be eyeballed together.
pub fn paper_complexity(id: SemanticsId, problem: Problem) -> &'static str {
    use Problem::*;
    use SemanticsId::*;
    match (id, problem) {
        (Gcwa, Literal) => "Πᵖ₂-complete",
        (Gcwa, Formula) => "Πᵖ₂-hard, in Δᵖ₃[O(log n)]",
        (Gcwa, Existence) => "NP-complete",
        (Ddr, Literal) | (Ddr, Formula) => "coNP-complete",
        (Ddr, Existence) => "NP-complete",
        (Pws, Literal) | (Pws, Formula) => "coNP-complete",
        (Pws, Existence) => "NP-complete",
        (Egcwa, Literal) | (Egcwa, Formula) => "Πᵖ₂-complete",
        (Egcwa, Existence) => "NP-complete",
        (Ccwa, Literal) | (Ccwa, Formula) => "Πᵖ₂-hard, in Δᵖ₃[O(log n)]",
        (Ccwa, Existence) => "NP-complete",
        (Ecwa, Literal) | (Ecwa, Formula) => "Πᵖ₂-complete",
        (Ecwa, Existence) => "NP-complete",
        (Icwa, Literal) | (Icwa, Formula) => "Πᵖ₂-complete",
        (Icwa, Existence) => "NP-complete",
        (Perf, Literal) | (Perf, Formula) => "Πᵖ₂-complete",
        (Perf, Existence) => "Σᵖ₂-complete",
        (Dsm, Literal) | (Dsm, Formula) => "Πᵖ₂-complete",
        (Dsm, Existence) => "Σᵖ₂-complete",
        (Pdsm, Literal) | (Pdsm, Formula) => "Πᵖ₂-complete",
        (Pdsm, Existence) => "Σᵖ₂-complete",
    }
}

/// Observed measurements for one (semantics, problem) cell.
#[derive(Clone, Debug)]
pub struct CellProfile {
    /// The semantics.
    pub semantics: SemanticsId,
    /// The decision problem.
    pub problem: Problem,
    /// The decision, or `None` if the semantics is undefined for this
    /// database class (see `unsupported`) or the cell's budget tripped
    /// (see `interrupted`).
    pub answer: Option<bool>,
    /// Set when the cell's budget tripped before the procedure decided;
    /// the cell's partial cost is still recorded.
    pub interrupted: Option<Interrupted>,
    /// Oracle accounting for this cell alone.
    pub cost: Cost,
    /// Wall-clock time for this cell alone.
    pub wall_ns: u64,
    /// Reason the cell is inapplicable, when `answer` is `None`.
    pub unsupported: Option<String>,
    /// Which dispatch route served this cell (`"magic"`, `"horn"`,
    /// `"slice"`, `"split"`, `"islands"`, `"hcf"`, or `"generic"`), read
    /// off the `route.*` counters; `None` when the cell was unsupported or
    /// routing never ran. Magic/slice/split/islands outrank the others:
    /// their recursive inner calls bump the plain counters too, but the
    /// query was claimed by the reduction.
    pub route: Option<&'static str>,
}

/// Per-thread before/after probe over the `route.*` counters. A cell runs
/// wholly on one thread (its inner configuration is width-1), so this
/// thread's monotone counter totals ([`ddb_obs::thread_counter_total`])
/// attribute routes exactly even while sibling cells run concurrently on
/// other workers — a global snapshot diff would see their bumps too.
struct RouteProbe {
    before: [u64; 7],
}

impl RouteProbe {
    const NAMES: [&'static str; 7] = [
        "route.magic",
        "route.slice",
        "route.split",
        "route.islands",
        "route.horn",
        "route.hcf",
        "route.generic",
    ];
    const LABELS: [&'static str; 7] = [
        "magic", "slice", "split", "islands", "horn", "hcf", "generic",
    ];

    fn begin() -> Self {
        RouteProbe {
            before: Self::NAMES.map(ddb_obs::thread_counter_total),
        }
    }

    /// The highest-precedence route bumped on this thread since `begin`.
    fn route(&self) -> Option<&'static str> {
        Self::NAMES
            .iter()
            .zip(Self::LABELS)
            .zip(self.before)
            .find(|((name, _), before)| ddb_obs::thread_counter_total(name) > *before)
            .map(|((_, label), _)| label)
    }
}

impl CellProfile {
    /// Serialize for `--trace-json` / bench metrics files.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("semantics", Json::Str(self.semantics.name().to_owned())),
            ("problem", Json::Str(self.problem.name().to_owned())),
            (
                "paper_class",
                Json::Str(paper_complexity(self.semantics, self.problem).to_owned()),
            ),
            (
                "answer",
                match self.answer {
                    Some(b) => Json::Bool(b),
                    None => Json::Null,
                },
            ),
            ("sat_calls", Json::UInt(self.cost.sat_calls)),
            ("candidates", Json::UInt(self.cost.candidates)),
            ("decisions", Json::UInt(self.cost.decisions)),
            ("conflicts", Json::UInt(self.cost.conflicts)),
            ("propagations", Json::UInt(self.cost.propagations)),
            ("peak_clauses", Json::UInt(self.cost.peak_clauses)),
            ("wall_ns", Json::UInt(self.wall_ns)),
            (
                "unsupported",
                match &self.unsupported {
                    Some(r) => Json::Str(r.clone()),
                    None => Json::Null,
                },
            ),
            (
                "interrupted",
                match &self.interrupted {
                    Some(i) => Json::Str(i.resource.label().to_owned()),
                    None => Json::Null,
                },
            ),
            (
                "route",
                match self.route {
                    Some(r) => Json::Str(r.to_owned()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Measure one cell: run `problem` under `cfg` on `db`, recording cost and
/// wall time. `lit` and `f` supply the queries for the inference problems.
/// A `cell_budget` governs just this cell (its relative timeout restarts
/// from zero here); a tripped budget yields an interrupted cell, never a
/// panic, so the rest of the matrix still completes.
pub fn profile_cell(
    cfg: &SemanticsConfig,
    db: &Database,
    problem: Problem,
    lit: Literal,
    f: &Formula,
    cell_budget: Option<&Budget>,
) -> CellProfile {
    let _span = ddb_obs::hist_span("profile.cell", "profile.cell.ns");
    let _guard = cell_budget.map(|b| b.clone().install());
    let mut cost = Cost::new();
    let probe = RouteProbe::begin();
    let started = Instant::now();
    let outcome = match problem {
        Problem::Literal => cfg.infers_literal(db, lit, &mut cost),
        Problem::Formula => cfg.infers_formula(db, f, &mut cost),
        Problem::Existence => cfg.has_model(db, &mut cost),
    };
    let wall_ns = started.elapsed().as_nanos() as u64;
    let route = probe.route();
    let (answer, interrupted, unsupported) = match outcome {
        Ok(Verdict::True) => (Some(true), None, None),
        Ok(Verdict::False) => (Some(false), None, None),
        Ok(Verdict::Unknown(i)) => (None, Some(i), None),
        Err(e) => (None, None, Some(e.reason)),
    };
    CellProfile {
        semantics: cfg.id,
        problem,
        answer,
        interrupted,
        cost,
        wall_ns,
        unsupported,
        route,
    }
}

/// Profile all ten semantics on all three problems: the full 10×3 observed
/// oracle-call matrix for `db`, in the paper's table order.
pub fn profile_all(db: &Database, lit: Literal, f: &Formula) -> Vec<CellProfile> {
    profile_all_budgeted(db, lit, f, None, 1)
}

/// [`profile_all`] with a per-cell budget (the `ddb profile
/// --cell-timeout-ms` machinery) and a worker-pool width (the `ddb profile
/// --threads` machinery). Each cell gets a fresh installation of
/// `cell_budget`, so one slow Πᵖ₂ cell cannot starve the rest of the
/// matrix — it is marked interrupted and the sweep moves on. The thirty
/// cells are independent jobs: `threads > 1` evaluates them concurrently
/// on the budget-inheriting pool, and the returned vector is in the
/// paper's table order at every width (workers return indexed results).
pub fn profile_all_budgeted(
    db: &Database,
    lit: Literal,
    f: &Formula,
    cell_budget: Option<&Budget>,
    threads: usize,
) -> Vec<CellProfile> {
    let _span = ddb_obs::span("profile.all");
    let jobs: Vec<_> = SemanticsId::ALL
        .into_iter()
        .flat_map(|id| Problem::ALL.into_iter().map(move |problem| (id, problem)))
        .map(|(id, problem)| {
            let cell_budget = cell_budget.cloned();
            move || {
                let cfg = SemanticsConfig::new(id);
                profile_cell(&cfg, db, problem, lit, f, cell_budget.as_ref())
            }
        })
        .collect();
    ddb_obs::run_indexed(threads, jobs)
}

/// Render profiles as an aligned text table: one row per semantics, one
/// column group (oracle calls + wall time) per problem, with the paper's
/// predicted class for the literal-inference column.
pub fn render_table(cells: &[CellProfile]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>24} {:>24} {:>24}  {}\n",
        "semantics",
        "lit (SAT calls, time)",
        "form (SAT calls, time)",
        "exist (SAT calls, time)",
        "paper (lit / form / exist)"
    ));
    for id in SemanticsId::ALL {
        let mut row = format!("{:<14}", id.name());
        for problem in Problem::ALL {
            let cell = cells
                .iter()
                .find(|c| c.semantics == id && c.problem == problem);
            match cell {
                Some(c) if c.answer.is_some() => {
                    let fast = match c.route {
                        Some("horn") | Some("hcf") => "*",
                        Some("magic") | Some("slice") | Some("split") | Some("islands") => "~",
                        _ => "",
                    };
                    row.push_str(&format!(
                        " {:>24}",
                        format!(
                            "{}{} calls, {}",
                            fast,
                            c.cost.sat_calls,
                            human_ns(c.wall_ns)
                        )
                    ));
                }
                Some(c) if c.interrupted.is_some() => {
                    let label = c.interrupted.as_ref().map_or("", |i| i.resource.label());
                    row.push_str(&format!(" {:>24}", format!("?{label}")));
                }
                Some(_) => row.push_str(&format!(" {:>24}", "n/a")),
                None => row.push_str(&format!(" {:>24}", "-")),
            }
        }
        row.push_str(&format!(
            "  {} / {} / {}",
            paper_complexity(id, Problem::Literal),
            paper_complexity(id, Problem::Formula),
            paper_complexity(id, Problem::Existence)
        ));
        out.push(' ');
        out.push_str(row.trim_end());
        out.push('\n');
    }
    if cells
        .iter()
        .any(|c| matches!(c.route, Some("horn") | Some("hcf")))
    {
        out.push_str(" * served by an analysis fast path (route.horn / route.hcf)\n");
    }
    if cells.iter().any(|c| {
        matches!(
            c.route,
            Some("magic") | Some("slice") | Some("split") | Some("islands")
        )
    }) {
        out.push_str(
            " ~ answered on a magic restriction, query-relevant slice, split residual or island decomposition (route.magic / route.slice / route.split / route.islands)\n",
        );
    }
    if cells.iter().any(|c| c.interrupted.is_some()) {
        out.push_str(" ?<resource> cell budget exhausted before the procedure decided\n");
    }
    out
}

fn human_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    #[test]
    fn profiles_every_cell_on_positive_db() {
        let db = parse_program("a | b. c :- a, b.").unwrap();
        let f = parse_formula("!c", db.symbols()).unwrap();
        let lit = ddb_logic::Atom::new(0).pos();
        let cells = profile_all(&db, lit, &f);
        assert_eq!(cells.len(), 30);
        // Positive database: every semantics applies; every cell answered.
        assert!(cells.iter().all(|c| c.answer.is_some()));
        // Oracle-backed existence checks cost at least one SAT call for
        // the NP-complete cells.
        let gcwa_exist = cells
            .iter()
            .find(|c| c.semantics == SemanticsId::Gcwa && c.problem == Problem::Existence)
            .unwrap();
        assert!(gcwa_exist.cost.sat_calls >= 1);
    }

    #[test]
    fn unsupported_cells_are_reported_not_panicked() {
        let db = parse_program("a :- not b.").unwrap();
        let f = parse_formula("a", db.symbols()).unwrap();
        let cells = profile_all(&db, ddb_logic::Atom::new(0).pos(), &f);
        let ddr = cells
            .iter()
            .find(|c| c.semantics == SemanticsId::Ddr && c.problem == Problem::Literal)
            .unwrap();
        assert!(ddr.answer.is_none());
        assert!(ddr.unsupported.is_some());
    }

    #[test]
    fn complexity_table_is_total_and_json_renders() {
        for id in SemanticsId::ALL {
            for p in Problem::ALL {
                assert!(!paper_complexity(id, p).is_empty());
            }
        }
        let db = parse_program("a | b.").unwrap();
        let f = parse_formula("a", db.symbols()).unwrap();
        let cells = profile_all(&db, ddb_logic::Atom::new(0).pos(), &f);
        let doc = Json::Arr(cells.iter().map(CellProfile::to_json).collect());
        let parsed = ddb_obs::json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.as_arr().unwrap().len(), 30);
    }

    #[test]
    fn horn_cells_report_fast_route_with_zero_oracle_calls() {
        let db = parse_program("a. b :- a. :- c.").unwrap();
        let f = parse_formula("b", db.symbols()).unwrap();
        let cells = profile_all(&db, ddb_logic::Atom::new(0).pos(), &f);
        // Horn database: every applicable cell rides the Horn fast path
        // and pays no oracle calls.
        for c in cells.iter().filter(|c| c.answer.is_some()) {
            assert_eq!(c.route, Some("horn"), "{:?}/{:?}", c.semantics, c.problem);
            assert_eq!(c.cost.sat_calls, 0, "{:?}/{:?}", c.semantics, c.problem);
        }
        assert!(render_table(&cells).contains("fast path"));
        let cell = cells.first().unwrap().to_json();
        assert_eq!(cell.get("route").unwrap().as_str(), Some("horn"));
    }

    #[test]
    fn budgeted_profile_marks_interrupted_cells_and_completes_matrix() {
        // A zero-oracle budget per cell: the oracle-backed cells come back
        // interrupted, the matrix still has all 30 cells, and nothing
        // panics. Table and JSON both surface the marker.
        let db = parse_program("a | b. c :- a. c :- b.").unwrap();
        let f = parse_formula("c", db.symbols()).unwrap();
        let budget = Budget::unlimited().with_max_oracle_calls(0);
        let cells = profile_all_budgeted(&db, ddb_logic::Atom::new(0).pos(), &f, Some(&budget), 1);
        assert_eq!(cells.len(), 30);
        assert!(cells.iter().any(|c| c.interrupted.is_some()));
        for c in cells.iter().filter(|c| c.interrupted.is_some()) {
            assert!(c.answer.is_none());
            assert_eq!(
                c.to_json().get("interrupted").unwrap().as_str(),
                Some("oracle_calls")
            );
        }
        assert!(render_table(&cells).contains("?oracle_calls"));
        assert!(render_table(&cells).contains("cell budget exhausted"));
    }

    #[test]
    fn parallel_profile_matches_sequential_cell_for_cell() {
        let db = parse_program("a | b. c :- a. c :- b. x | y. :- x, y.").unwrap();
        let f = parse_formula("c & !x | c & !y", db.symbols()).unwrap();
        let lit = ddb_logic::Atom::new(0).pos();
        let reference = profile_all_budgeted(&db, lit, &f, None, 1);
        for threads in [2, 4, 8] {
            let got = profile_all_budgeted(&db, lit, &f, None, threads);
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.semantics, r.semantics, "order must be table order");
                assert_eq!(g.problem, r.problem, "order must be table order");
                assert_eq!(g.answer, r.answer, "{:?}/{:?}", r.semantics, r.problem);
                assert_eq!(g.route, r.route, "{:?}/{:?}", r.semantics, r.problem);
                assert_eq!(
                    g.cost.sat_calls, r.cost.sat_calls,
                    "{:?}/{:?}",
                    r.semantics, r.problem
                );
            }
        }
    }

    #[test]
    fn render_table_lists_all_semantics() {
        let db = parse_program("a | b.").unwrap();
        let f = parse_formula("a", db.symbols()).unwrap();
        let cells = profile_all(&db, ddb_logic::Atom::new(0).pos(), &f);
        let table = render_table(&cells);
        for id in SemanticsId::ALL {
            assert!(table.contains(id.name()), "missing {}", id.name());
        }
    }
}
