//! Analysis-driven fast paths for easy fragments.
//!
//! The paper's tables assign Πᵖ₂/Σᵖ₂ cells to *general* disjunctive
//! databases; on the fragments the [`ddb_analysis`] classifier recognizes,
//! whole rows collapse:
//!
//! * **Horn** databases ([`horn_models`] and friends): the least model `L`
//!   of the definite rules is computable by the polynomial worklist
//!   fixpoint ([`ddb_models::fixpoint::active_atoms`]); the database is
//!   consistent iff `L` satisfies its integrity clauses, and then *every*
//!   one of the ten semantics has `{L}` as its characteristic model set —
//!   inference is formula evaluation at `L` (vacuously true when
//!   inconsistent) and model existence is consistency. Zero oracle calls.
//! * **Head-cycle-free** databases ([`for_each_hcf_stable_model`]): by the
//!   Ben-Eliyahu & Dechter theorem, `DSM(DB)` equals the stable models of
//!   the *shifted* normal program ([`ddb_analysis::shift`]), whose
//!   stability check is a polynomial reduct-fixpoint comparison instead of
//!   one minimality oracle call per candidate.
//!
//! [`crate::dispatch`] consults the fragment flags and calls into this
//! module, bumping the `route.horn` / `route.hcf` / `route.generic`
//! counters so `ddb profile` can show which cells were served by a fast
//! path. Equality of fast-path and generic answers across all ten
//! semantics is pinned by the seeded property tests in
//! `tests/routing.rs`.

use crate::reduct::gl_reduct;
use ddb_analysis::transform::shift;
use ddb_logic::cnf::database_to_cnf;
use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_models::fixpoint::active_atoms;
use ddb_models::{minimal, Cost};
use ddb_obs::{budget, Governed};
use ddb_sat::Solver;

/// The least model of a Horn database's definite rules, plus whether the
/// database is consistent (i.e. that model also satisfies the integrity
/// clauses). Polynomial; no oracle calls.
///
/// # Panics
/// Panics if `db` is not Horn (the fixpoint rejects negation).
pub fn horn_least_model(db: &Database) -> (Interpretation, bool) {
    debug_assert!(db.is_horn(), "horn fast path on a non-Horn database");
    let least = active_atoms(db);
    let consistent = db.satisfied_by(&least);
    (least, consistent)
}

/// Horn fast path for the characteristic model set: `{L}` when consistent,
/// empty otherwise — identical for all ten semantics.
pub fn horn_models(db: &Database) -> Vec<Interpretation> {
    let (least, consistent) = horn_least_model(db);
    if consistent {
        vec![least]
    } else {
        Vec::new()
    }
}

/// Horn fast path for formula inference: `F` evaluated at the least model,
/// vacuously true when the database is inconsistent.
pub fn horn_infers_formula(db: &Database, f: &Formula) -> bool {
    let (least, consistent) = horn_least_model(db);
    !consistent || f.eval(&least)
}

/// Horn fast path for literal inference.
pub fn horn_infers_literal(db: &Database, lit: Literal) -> bool {
    let (least, consistent) = horn_least_model(db);
    !consistent || least.contains(lit.atom()) == lit.is_positive()
}

/// Horn fast path for model existence: consistency of the least model.
pub fn horn_has_model(db: &Database) -> bool {
    horn_least_model(db).1
}

/// Polynomial stability check for a **normal** program (every head has at
/// most one atom, e.g. the output of [`shift`]): `m` is stable iff it is a
/// model and equals the least fixpoint of the definite part of the
/// Gelfond–Lifschitz reduct. This replaces the minimality oracle call of
/// the generic [`crate::dsm::is_stable_model`].
pub fn normal_is_stable(normal: &Database, m: &Interpretation) -> bool {
    debug_assert!(
        normal.rules().iter().all(|r| r.head().len() <= 1),
        "polynomial stability check requires a normal program"
    );
    if !normal.satisfied_by(m) {
        return false;
    }
    active_atoms(&gl_reduct(normal, m)) == *m
}

/// Visits the disjunctive stable models of a **head-cycle-free** database:
/// the same minimal-model enumeration as [`crate::dsm::for_each_stable_model`],
/// but with the per-candidate stability oracle call replaced by the
/// polynomial shifted-program check ([`normal_is_stable`]). Sound and
/// complete for HCF databases by Ben-Eliyahu & Dechter. Each round starts
/// with a budget checkpoint, so an exhausted [`ddb_obs::Budget`]
/// interrupts between rounds.
pub fn for_each_hcf_stable_model(
    db: &Database,
    cost: &mut Cost,
    mut visit: impl FnMut(&Interpretation) -> bool,
) -> Governed<()> {
    let shifted = shift(db);
    let n = db.num_atoms();
    let mut candidates = Solver::from_cnf(&database_to_cnf(db));
    candidates.ensure_vars(n);
    let mut run = |cost: &mut Cost, candidates: &mut Solver| -> Governed<()> {
        loop {
            budget::checkpoint()?;
            if !candidates.solve()?.is_sat() {
                return Ok(());
            }
            let model = {
                let full = candidates.model();
                let mut m = Interpretation::empty(n);
                for a in full.iter().filter(|a| a.index() < n) {
                    m.insert(a);
                }
                m
            };
            let minimal = minimal::minimize(db, &model, cost)?;
            ddb_obs::counter_bump("route.hcf.stability_checks", 1);
            if normal_is_stable(&shifted, &minimal) && !visit(&minimal) {
                return Ok(());
            }
            let blocking: Vec<Literal> = minimal.iter().map(|a| a.neg()).collect();
            if blocking.is_empty() || !candidates.add_clause(&blocking) {
                return Ok(());
            }
        }
    };
    let result = run(cost, &mut candidates);
    cost.absorb(&candidates);
    result
}

/// HCF fast path for [`crate::dsm::models`].
pub fn hcf_dsm_models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let mut out = Vec::new();
    for_each_hcf_stable_model(db, cost, |m| {
        out.push(m.clone());
        true
    })?;
    out.sort();
    Ok(out)
}

/// HCF fast path for DSM formula inference (cautious; vacuously true
/// without stable models).
pub fn hcf_dsm_infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let mut holds = true;
    for_each_hcf_stable_model(db, cost, |m| {
        if !f.eval(m) {
            holds = false;
            return false;
        }
        true
    })?;
    Ok(holds)
}

/// HCF fast path for DSM literal inference.
pub fn hcf_dsm_infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    hcf_dsm_infers_formula(db, &Formula::literal(lit.atom(), lit.is_positive()), cost)
}

/// HCF fast path for DSM model existence.
pub fn hcf_dsm_has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let mut found = false;
    for_each_hcf_stable_model(db, cost, |_| {
        found = true;
        false
    })?;
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    #[test]
    fn horn_least_model_and_consistency() {
        let db = parse_program("a. b :- a. c :- b, d.").unwrap();
        let (least, consistent) = horn_least_model(&db);
        assert!(consistent);
        assert_eq!(least.count(), 2); // a, b
        let bad = parse_program("a. b :- a. :- b.").unwrap();
        assert!(!horn_has_model(&bad));
        assert!(horn_models(&bad).is_empty());
        // Vacuous inference on inconsistent databases.
        let f = parse_formula("false", bad.symbols()).unwrap();
        assert!(horn_infers_formula(&bad, &f));
    }

    #[test]
    fn horn_agrees_with_generic_dsm() {
        let db = parse_program("a. b :- a. c :- b, d. :- e.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            horn_models(&db),
            crate::dsm::models(&db, &mut cost).unwrap()
        );
        assert!(cost.sat_calls > 0, "generic path pays oracle calls");
    }

    #[test]
    fn hcf_path_matches_generic_dsm() {
        for src in [
            "a | b. c :- a. c :- b.",
            "a | b :- not c. c :- not d. d :- not c.",
            "a | b :- c. c :- b.",
        ] {
            let db = parse_program(src).unwrap();
            assert!(ddb_analysis::classify(&db).head_cycle_free, "{src}");
            let mut c1 = Cost::new();
            let mut c2 = Cost::new();
            assert_eq!(
                hcf_dsm_models(&db, &mut c1).unwrap(),
                crate::dsm::models(&db, &mut c2).unwrap(),
                "{src}"
            );
        }
    }

    #[test]
    fn normal_stability_check_matches_oracle_check() {
        let db = parse_program("p :- not q. q :- not p. r :- p.").unwrap();
        let mut cost = Cost::new();
        let n = db.num_atoms();
        for bits in 0u32..(1 << n) {
            let m = Interpretation::from_atoms(
                n,
                (0..n as u32)
                    .filter(|&i| bits >> i & 1 == 1)
                    .map(ddb_logic::Atom::new),
            );
            assert_eq!(
                normal_is_stable(&db, &m),
                crate::dsm::is_stable_model(&db, &m, &mut cost).unwrap(),
                "at {m:?}"
            );
        }
    }
}
