//! Supported models (Clark completion) for normal programs — the
//! semantics behind the related-work results the paper cites from
//! Schaerf \[25, 26\] (weakly-supported / minimally-supported models of
//! non-Horn programs).
//!
//! `M` is a **supported model** of a normal program iff `M ⊨ DB` and every
//! atom `a ∈ M` has a rule `a ← body` whose body holds in `M` — i.e. `M`
//! is a model of Clark's completion. Unlike stability, support is *not*
//! well-founded: the positive loop `{a ← b, b ← a}` has the supported
//! model `{a, b}`. Supported models therefore sit strictly between
//! classical models and stable models:
//!
//! `DSM(DB) ⊆ SUPP(DB) ⊆ M(DB)` (both inclusions strict in general —
//! pinned by tests).
//!
//! Complexity shape (matching Schaerf's results quoted in the paper's
//! related work): existence and brave inference are **NP-complete**,
//! cautious inference **coNP-complete** — each a single SAT call on the
//! completion encoding, with no level mappings needed (acyclicity is
//! exactly what support does *not* require).

use ddb_logic::cnf::{Cnf, CnfBuilder};
use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_models::Cost;
use ddb_obs::Governed;
use ddb_sat::{enumerate_models, Solver};

/// Whether every rule head is a single atom (supported models are a
/// normal-program notion; disjunctive generalizations diverge and are
/// out of scope).
pub fn is_normal_program(db: &Database) -> bool {
    db.rules().iter().all(|r| r.head().len() <= 1)
}

/// Builds the Clark-completion CNF: the program clauses plus, for each
/// atom, `a → ⋁_{rules a ← body} body` (bodies Tseitin-encoded).
/// Satisfying assignments projected to the vocabulary are exactly the
/// supported models.
pub fn completion_cnf(db: &Database) -> Cnf {
    assert!(
        is_normal_program(db),
        "supported models are defined for normal (singleton-head) programs"
    );
    let n = db.num_atoms();
    let mut b = CnfBuilder::new(n);
    b.add_database(db);
    for i in 0..n {
        let a = ddb_logic::Atom::new(i as u32);
        let mut supports: Vec<Formula> = Vec::new();
        for rule in db.rules() {
            if rule.head() != [a] {
                continue;
            }
            let body: Vec<Formula> = rule
                .body_pos()
                .iter()
                .map(|&x| Formula::atom(x))
                .chain(rule.body_neg().iter().map(|&x| Formula::atom(x).negated()))
                .collect();
            supports.push(Formula::And(body));
        }
        b.assert_formula(&Formula::atom(a).implies(Formula::Or(supports)));
    }
    b.finish()
}

/// Whether `m` is a supported model (polynomial check).
pub fn is_supported_model(db: &Database, m: &Interpretation) -> bool {
    assert!(is_normal_program(db));
    if !db.satisfied_by(m) {
        return false;
    }
    m.iter().all(|a| {
        db.rules()
            .iter()
            .any(|r| r.head() == [a] && r.body_holds(m))
    })
}

/// All supported models (projected SAT enumeration).
pub fn models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let cnf = completion_cnf(db);
    let mut out = Vec::new();
    let mut calls = 0u64;
    let result = enumerate_models(&cnf, db.num_atoms(), |m| {
        calls += 1;
        out.push(m.clone());
        true
    });
    cost.sat_calls += calls + 1;
    result?;
    out.sort();
    Ok(out)
}

/// Model existence — one SAT call (NP-complete).
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let mut solver = Solver::from_cnf(&completion_cnf(db));
    let result = solver.solve();
    cost.absorb(&solver);
    Ok(result?.is_sat())
}

/// Cautious formula inference: `F` true in every supported model — one
/// coNP check (vacuously true when none exists).
pub fn infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let base = completion_cnf(db);
    let mut b = CnfBuilder::new(base.num_vars);
    for c in &base.clauses {
        b.add_clause(c.clone());
    }
    b.assert_formula(&f.clone().negated());
    let mut solver = Solver::from_cnf(&b.finish());
    let result = solver.solve();
    cost.absorb(&solver);
    Ok(!result?.is_sat())
}

/// Brave formula inference: `F` true in some supported model — one NP
/// check.
pub fn brave_infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let base = completion_cnf(db);
    let mut b = CnfBuilder::new(base.num_vars);
    for c in &base.clauses {
        b.add_clause(c.clone());
    }
    b.assert_formula(f);
    let mut solver = Solver::from_cnf(&b.finish());
    let result = solver.solve();
    cost.absorb(&solver);
    Ok(result?.is_sat())
}

/// Cautious literal inference.
pub fn infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    infers_formula(db, &Formula::literal(lit.atom(), lit.is_positive()), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    fn interp(db: &Database, names: &[&str]) -> Interpretation {
        Interpretation::from_atoms(
            db.num_atoms(),
            names.iter().map(|n| db.symbols().lookup(n).unwrap()),
        )
    }

    #[test]
    fn positive_loop_is_supported_but_not_stable() {
        let db = parse_program("a :- b. b :- a.").unwrap();
        let mut cost = Cost::new();
        let supported = models(&db, &mut cost).unwrap();
        assert_eq!(supported, vec![interp(&db, &[]), interp(&db, &["a", "b"])]);
        // Only ∅ is stable.
        assert_eq!(
            crate::dsm::models(&db, &mut cost).unwrap(),
            vec![Interpretation::empty(2)]
        );
    }

    #[test]
    fn stable_implies_supported() {
        for src in [
            "a :- not b. b :- not a.",
            "p :- not q. r :- p.",
            "a. b :- a, not c.",
            "x :- y. y :- x. z :- not x.",
        ] {
            let db = parse_program(src).unwrap();
            let mut cost = Cost::new();
            let supported = models(&db, &mut cost).unwrap();
            for m in crate::dsm::models(&db, &mut cost).unwrap() {
                assert!(supported.contains(&m), "{src}: {m:?}");
            }
        }
    }

    #[test]
    fn supported_implies_model() {
        let db = parse_program("a :- not b. c :- a.").unwrap();
        let mut cost = Cost::new();
        for m in models(&db, &mut cost).unwrap() {
            assert!(db.satisfied_by(&m));
            assert!(is_supported_model(&db, &m));
        }
    }

    #[test]
    fn unsupported_atoms_excluded() {
        // {a} is a classical model of `a :- a.`… supported too (rule body
        // holds). But for a bare vocabulary atom with no rule, support
        // fails.
        let db = parse_program("a :- a. b :- z.").unwrap();
        let mut cost = Cost::new();
        let supported = models(&db, &mut cost).unwrap();
        let b_atom = db.symbols().lookup("b").unwrap();
        let z = db.symbols().lookup("z").unwrap();
        for m in &supported {
            assert!(!m.contains(z), "z has no rule at all");
            // b is only supported when z holds — never, since z can't.
            assert!(!m.contains(b_atom));
        }
    }

    #[test]
    fn odd_loop_has_no_supported_model() {
        // a :- not a: {a} unsupported? body ¬a false under {a} → a lacks
        // support → not supported. ∅ ⊭ the rule. So none.
        let db = parse_program("a :- not a.").unwrap();
        let mut cost = Cost::new();
        assert!(!has_model(&db, &mut cost).unwrap());
        assert!(models(&db, &mut cost).unwrap().is_empty());
        // Cautious inference is vacuous; brave is empty.
        let f = parse_formula("false", db.symbols()).unwrap();
        assert!(infers_formula(&db, &f, &mut cost).unwrap());
        assert!(!brave_infers_formula(&db, &f.clone().negated(), &mut cost).unwrap());
    }

    #[test]
    fn cautious_and_brave_match_enumeration() {
        let db = parse_program("a :- not b. b :- not a. c :- a. c :- b. d :- d.").unwrap();
        let mut cost = Cost::new();
        let supported = models(&db, &mut cost).unwrap();
        for text in ["c", "a", "d", "a | b", "d -> a"] {
            let f = parse_formula(text, db.symbols()).unwrap();
            assert_eq!(
                infers_formula(&db, &f, &mut cost).unwrap(),
                supported.iter().all(|m| f.eval(m)),
                "cautious {text}"
            );
            assert_eq!(
                brave_infers_formula(&db, &f, &mut cost).unwrap(),
                supported.iter().any(|m| f.eval(m)),
                "brave {text}"
            );
        }
    }

    #[test]
    fn single_oracle_call_per_query() {
        let db = parse_program("a :- not b. b :- not a.").unwrap();
        let f = parse_formula("a | b", db.symbols()).unwrap();
        let mut cost = Cost::new();
        infers_formula(&db, &f, &mut cost).unwrap();
        assert_eq!(cost.sat_calls, 1, "cautious inference is one coNP call");
    }

    #[test]
    #[should_panic(expected = "singleton-head")]
    fn rejects_disjunctive_programs() {
        let db = parse_program("a | b.").unwrap();
        let _ = completion_cnf(&db);
    }

    #[test]
    fn integrity_clauses_allowed() {
        let db = parse_program("a :- not b. b :- not a. :- a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(models(&db, &mut cost).unwrap(), vec![interp(&db, &["b"])]);
    }
}
