//! Execution of the magic, query-relevant slicing and splitting-set
//! routes.
//!
//! Three complementary reductions that shrink the database a query
//! actually has to reason over, all driven by the static analyzer:
//!
//! * **Backward relevance slicing** ([`ddb_analysis::relevant_slice`]):
//!   a query formula mentions a handful of atoms; only the rules
//!   backward-reachable from them can influence its truth value. When the
//!   soundness precondition ([`Admission`]) holds, inference runs on the
//!   projected slice — a strictly smaller database, so the oracle sees
//!   strictly smaller CNFs (and may even collapse to the Horn fast path).
//! * **Magic-sets restriction** ([`ddb_analysis::magic_restrict`]): for
//!   bound queries (argument constants fixed by the query) the demand
//!   closure of the magic rewrite — the relevance slice minus dead rules
//!   whose positive body can never be derived. Admission reuses the slice
//!   rules below; dead pruning only survives admission in the
//!   positive-exact case, where it is sound (a never-firing rule fires in
//!   no minimal model of a positive database). `run_magic` answers on
//!   the projected restriction, which is answer-equivalent to running the
//!   guarded rewrite `ddb rewrite` prints.
//! * **Splitting-set peeling** ([`ddb_analysis::peel`]): the
//!   deterministic bottom components of the SCC condensation have a
//!   unique solution computable in polynomial time; partially evaluating
//!   it into the rest leaves a smaller residual program that answers the
//!   same queries after substituting the decided atoms into the formula.
//!
//! The *decision* of which route a query takes lives in the static
//! planner ([`crate::planner`], backed by [`ddb_analysis::decide`]):
//! dispatch asks the planner and hands the decision's payload — the
//! admitted [`Slice`] or the [`Peel`] — to the executors here
//! (`run_slice`, `run_peel`, `run_exist_split`). This module never
//! re-derives the analysis that justified the route; it only runs it and
//! records it in the `route.slice*` / `route.split*` counters surfaced by
//! `ddb profile`.
//!
//! # Soundness preconditions
//!
//! Slicing is admitted in exactly two situations, checked per query:
//!
//! 1. **Positive databases** ([`Admission::PositiveExact`]): no negation
//!    and no integrity clauses anywhere. Minimal models project onto the
//!    slice (`MM(DB)|_R = MM(slice)`), the non-slice part can never be
//!    inconsistent, and every minimal-model-determined answer is exact on
//!    the slice — even when the slice boundary is read by outside rules.
//!    GCWA and CCWA keep non-minimal models in their characteristic sets,
//!    so for them this admission is restricted to literal queries (see
//!    [`admission`]).
//! 2. **Split-closed slices** ([`Admission::Product`]): no non-slice rule
//!    mentions a slice atom, so the database is a disjoint union and every
//!    semantics factors as a product. One correction is owed: when the
//!    non-slice part has an *empty* characteristic model set, cautious
//!    inference over the whole database is vacuously true whatever the
//!    slice says, so a `false` slice answer triggers one
//!    `has_model` check on the top part.
//!
//! Anything else ([`Admission::Blocked`]) falls back to the generic
//! whole-database procedure and bumps `route.slice.blocked`.
//!
//! Peeling is gated per semantics by [`peel_mode`]: negation-aware for
//! the stable-model family (DSM, PDSM), restricted to atoms never read
//! through negation for the model-theoretic rest, and disabled outright
//! for PERF and ICWA, whose priority relation and stratification are
//! computed from rules a peel would discharge; see
//! `ddb_analysis::splitting` for the construction. Both routes
//! additionally require the *default* semantics structure (minimize-all
//! partition, no varying atoms): with fixed or varying atoms an
//! underivable atom is no longer forced false, and the bottom solution
//! stops being unique.

use crate::dispatch::{SemanticsConfig, SemanticsId, Unsupported, Verdict};
use ddb_analysis::{project_slice, project_top, Fragments, MagicRestriction, Peel, Slice};
use ddb_logic::{Database, Formula, Literal};
use ddb_models::Cost;
use ddb_obs::Governed;

pub use ddb_analysis::Admission;

/// Decides whether a query over `slice` may be answered on the slice
/// alone (shared with the `ddb slice` subcommand, which prints the
/// admitting or blocking precondition).
///
/// The positive-exact admission requires the query's answer to be
/// determined by the minimal-model set, which projects onto the slice.
/// That holds for every semantics on formulas *except* GCWA and CCWA:
/// their characteristic model sets keep **non-minimal** models, and a
/// non-slice rule whose head is inferred false turns into an invisible
/// constraint on them (`c :- a, b.` with `¬c` inferred prunes the
/// non-minimal `{a, b}`). Literal inference is minimal-model-determined
/// for all ten, so `literal_query` re-admits GCWA/CCWA.
pub fn admission(
    id: SemanticsId,
    frags: &Fragments,
    slice: &Slice,
    literal_query: bool,
) -> Admission {
    let mm_determined = literal_query || !matches!(id, SemanticsId::Gcwa | SemanticsId::Ccwa);
    ddb_analysis::admission(frags, slice, mm_determined)
}

/// How the peel may run for this semantics: `None` when peeling is
/// unsound, `Some(peel_negation)` otherwise.
///
/// * The stable-model family (DSM, PDSM) peels through stratified
///   negation: *foundedness* makes every underivable atom false, even one
///   read through negation by an integrity clause.
/// * The classical CWA family (GCWA/EGCWA/CCWA/ECWA) and the
///   negation-free pair (DDR, PWS) are model-theoretic in the clause
///   theory, so the peel is sound but restricted to atoms never read
///   through negation (`:- not x.` forces an underivable `x` true
///   classically).
/// * PERF and ICWA are *syntax-sensitive*: the perfect-model priority
///   relation and the ICWA stratification are built from every rule,
///   including rules a peel would discharge as dead, so partial
///   evaluation can change their answers. No peel.
pub fn peel_mode(id: SemanticsId) -> Option<bool> {
    match id {
        SemanticsId::Perf | SemanticsId::Icwa => None,
        SemanticsId::Dsm | SemanticsId::Pdsm => Some(true),
        _ => Some(false),
    }
}

/// An inner configuration that must not re-enter the slice/split/island
/// routes (residual programs would otherwise recurse forever on atoms
/// whose rules were consumed by the peel).
pub(crate) fn inner(cfg: &SemanticsConfig) -> SemanticsConfig {
    SemanticsConfig {
        no_slice: true,
        ..cfg.clone()
    }
}

/// Folds an inner-call result into the route's three-way outcome:
/// a definite verdict is the route's answer, an `Unsupported` inner call
/// abandons the route (`Ok(None)` → generic fallback), and a budget
/// interrupt propagates (`Err`) so the top level reports `Unknown` instead
/// of silently re-running the whole database.
fn definite(r: Result<Verdict, Unsupported>) -> Governed<Option<bool>> {
    match r {
        Ok(Verdict::True) => Ok(Some(true)),
        Ok(Verdict::False) => Ok(Some(false)),
        Ok(Verdict::Unknown(i)) => Err(i),
        Err(_) => Ok(None),
    }
}

/// Records the taken peel in the `route.split*` counters.
fn note_split(p: &Peel) {
    ddb_obs::counter_bump("route.split", 1);
    ddb_obs::counter_bump("route.split.decided_atoms", p.num_decided as u64);
    ddb_obs::counter_bump("route.split.components", p.components_decided as u64);
}

/// Executes an admitted slice route for an inference query: project the
/// slice, re-enter the dispatcher on the sub-database (the recursive call
/// may still peel it or ride the Horn fast path), and apply the product
/// correction when a cautious `false` must survive an independent top
/// part. `lit` is `Some` exactly when the query is a single literal —
/// threaded through so the reduced sub-database is still queried with the
/// specialized `infers_literal` procedures, which for GCWA/CCWA are far
/// cheaper than generic formula inference.
pub(crate) fn run_slice(
    cfg: &SemanticsConfig,
    db: &Database,
    slice: &Slice,
    admission: Admission,
    f: &Formula,
    lit: Option<Literal>,
    cost: &mut Cost,
) -> Governed<Option<bool>> {
    ddb_obs::counter_bump("route.slice", 1);
    ddb_obs::counter_bump(
        "route.slice.dropped_rules",
        (db.len() - slice.rules.len()) as u64,
    );
    let (sub, map) = project_slice(db, slice);
    // Re-slicing the projected slice is a no-op (the closure is already
    // whole), so the recursive call may still peel it or ride the Horn
    // fast path.
    let ans = match lit {
        Some(l) => {
            let a = map.to_sub[l.atom().index()].expect("query atom is in its slice");
            definite(cfg.infers_literal(&sub, Literal::with_sign(a, l.is_positive()), cost))?
        }
        None => {
            let f_sub = f.map_atoms(&mut |a| {
                Formula::Atom(map.to_sub[a.index()].expect("query atom is in its slice"))
            });
            definite(cfg.infers_formula(&sub, &f_sub, cost))?
        }
    };
    let Some(ans) = ans else {
        return Ok(None);
    };
    if ans || admission == Admission::PositiveExact {
        return Ok(Some(ans));
    }
    // Product correction: a cautious `false` on the slice only transfers
    // to the whole database when the independent top part has a model at
    // all — an empty top model set makes every inference vacuously true.
    let (top, _) = project_top(db, slice);
    match definite(inner(cfg).has_model(&top, cost))? {
        Some(has) => Ok(Some(!has)),
        None => Ok(None),
    }
}

/// Executes an admitted magic route for an inference query: project the
/// demand restriction and answer on it, exactly as [`run_slice`] does on
/// a relevance slice (the restriction's `Slice` carries split-closure
/// data computed against every non-kept rule, dropped dead rules
/// included, so the product correction below is only ever reached when
/// it is sound).
pub(crate) fn run_magic(
    cfg: &SemanticsConfig,
    db: &Database,
    restriction: &MagicRestriction,
    admission: Admission,
    f: &Formula,
    lit: Option<Literal>,
    cost: &mut Cost,
) -> Governed<Option<bool>> {
    ddb_obs::counter_bump("route.magic", 1);
    ddb_obs::counter_bump(
        "route.magic.dropped_rules",
        (db.len() - restriction.slice.rules.len()) as u64,
    );
    let (sub, map) = project_slice(db, &restriction.slice);
    let ans = match lit {
        Some(l) => {
            let a = map.to_sub[l.atom().index()].expect("query atom is in its restriction");
            definite(cfg.infers_literal(&sub, Literal::with_sign(a, l.is_positive()), cost))?
        }
        None => {
            let f_sub = f.map_atoms(&mut |a| {
                Formula::Atom(map.to_sub[a.index()].expect("query atom is in its restriction"))
            });
            definite(cfg.infers_formula(&sub, &f_sub, cost))?
        }
    };
    let Some(ans) = ans else {
        return Ok(None);
    };
    if ans || admission == Admission::PositiveExact {
        return Ok(Some(ans));
    }
    // Product correction, as in `run_slice`. A product admission implies
    // the restriction dropped no dead rules (a dropped rule's demanded
    // head would break the split), so the top part is the exact
    // complement.
    let (top, _) = project_top(db, &restriction.slice);
    match definite(inner(cfg).has_model(&top, cost))? {
        Some(has) => Ok(Some(!has)),
        None => Ok(None),
    }
}

/// Executes a decided peel route for an inference query: substitute the
/// decided atoms into the formula and answer on the residual with an
/// inner (non-re-slicing) configuration.
pub(crate) fn run_peel(
    cfg: &SemanticsConfig,
    p: &Peel,
    f: &Formula,
    lit: Option<Literal>,
    cost: &mut Cost,
) -> Governed<Option<bool>> {
    note_split(p);
    if let Some(l) = lit {
        if p.decided[l.atom().index()].is_none() {
            return definite(inner(cfg).infers_literal(&p.residual, l, cost));
        }
        // A decided query atom degenerates to a constant formula below.
    }
    let f_res = f.map_atoms(&mut |a| match p.decided[a.index()] {
        Some(true) => Formula::True,
        Some(false) => Formula::False,
        None => Formula::Atom(a),
    });
    definite(inner(cfg).infers_formula(&p.residual, &f_res, cost))
}

/// Executes a decided peel route for model existence: solve the
/// deterministic bottom, then decompose the residual into
/// weakly-connected islands and evaluate them on the worker pool
/// ([`crate::parallel::islands_has_model`]); a single-island residual
/// falls through to an inner existence check.
pub(crate) fn run_exist_split(
    cfg: &SemanticsConfig,
    p: &Peel,
    cost: &mut Cost,
) -> Governed<Option<bool>> {
    note_split(p);
    if let Some(ans) = crate::parallel::islands_has_model(cfg, &p.residual, cost)? {
        return Ok(Some(ans));
    }
    definite(inner(cfg).has_model(&p.residual, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::RoutingMode;
    use ddb_logic::parse::{parse_formula, parse_program};

    fn counters_after(f: impl FnOnce()) -> ddb_obs::CounterSnapshot {
        let before = ddb_obs::snapshot();
        f();
        ddb_obs::snapshot().diff(&before)
    }

    #[test]
    fn slice_route_answers_and_counts() {
        // Query c only needs the a|b block; the x|y block is dropped.
        let db = parse_program("a | b. c :- a. c :- b. x | y. z :- x.").unwrap();
        let f = parse_formula("c", db.symbols()).unwrap();
        let cfg = SemanticsConfig::new(SemanticsId::Egcwa);
        let mut cost = Cost::new();
        let mut ans = false;
        let spent =
            counters_after(|| ans = cfg.infers_formula(&db, &f, &mut cost).unwrap().definite());
        assert!(ans);
        assert!(spent.get("route.slice") > 0);
        assert_eq!(spent.get("route.slice.dropped_rules"), 2);
    }

    #[test]
    fn blocked_slice_falls_back_to_generic() {
        // Not positive (negation) and not split-closed: d :- not c reads
        // the slice of query c from outside.
        let db = parse_program("a | b. c :- a. d :- not c. e.").unwrap();
        let f = parse_formula("c", db.symbols()).unwrap();
        let cfg = SemanticsConfig::new(SemanticsId::Dsm);
        let mut cost = Cost::new();
        let spent = counters_after(|| {
            cfg.infers_formula(&db, &f, &mut cost).unwrap();
        });
        assert!(spent.get("route.slice.blocked") > 0);
        assert_eq!(spent.get("route.slice"), 0);
    }

    #[test]
    fn peel_route_substitutes_decided_atoms() {
        // The Horn prefix x0, x1 peels away; the query mixes decided and
        // open atoms.
        let db = parse_program("x0. x1 :- x0. a | b :- x1. q :- a. q :- b.").unwrap();
        let f = parse_formula("x1 & q", db.symbols()).unwrap();
        for id in SemanticsId::ALL {
            let cfg = SemanticsConfig::new(id);
            let mut cost = Cost::new();
            let mut ans = false;
            let spent =
                counters_after(|| ans = cfg.infers_formula(&db, &f, &mut cost).unwrap().definite());
            assert!(ans, "{id}");
            if peel_mode(id).is_some() {
                assert!(spent.get("route.split") > 0, "{id}");
            } else {
                // PERF/ICWA never peel; the whole-slice query falls back.
                assert!(spent.get("route.split") == 0, "{id}");
            }
        }
    }

    #[test]
    fn product_correction_catches_inconsistent_top() {
        // The slice for q is `a | b. q :- a. q :- b.` and infers neither
        // x nor ¬q issues; the independent top `t. :- t.` is
        // inconsistent, so the whole database cautiously infers
        // everything — including ¬q.
        let db = parse_program("a | b. q :- a. q :- b. t. :- t.").unwrap();
        let f = parse_formula("!q", db.symbols()).unwrap();
        for id in [SemanticsId::Gcwa, SemanticsId::Egcwa, SemanticsId::Dsm] {
            let cfg = SemanticsConfig::new(id);
            let mut cost = Cost::new();
            let auto = cfg.infers_formula(&db, &f, &mut cost).unwrap().definite();
            let generic = cfg
                .clone()
                .with_routing(RoutingMode::Generic)
                .infers_formula(&db, &f, &mut cost)
                .unwrap()
                .definite();
            assert_eq!(auto, generic, "{id}");
            assert!(auto, "inconsistent DB infers everything ({id})");
        }
    }

    #[test]
    fn has_model_rides_the_peel() {
        let db = parse_program("a. b :- a. c | d :- b. :- a, z.").unwrap();
        let cfg = SemanticsConfig::new(SemanticsId::Dsm);
        let mut cost = Cost::new();
        let mut ans = false;
        let spent = counters_after(|| ans = cfg.has_model(&db, &mut cost).unwrap().definite());
        assert!(ans);
        assert!(spent.get("route.split") > 0);
        // And a violated bottom constraint kills the model set.
        let bad = parse_program("a. b :- a. :- b. c | d.").unwrap();
        assert!(!cfg.has_model(&bad, &mut cost).unwrap().definite());
    }

    #[test]
    fn generic_mode_never_slices() {
        let db = parse_program("a | b. c :- a. x | y.").unwrap();
        let f = parse_formula("c", db.symbols()).unwrap();
        let cfg = SemanticsConfig::new(SemanticsId::Egcwa).with_routing(RoutingMode::Generic);
        let mut cost = Cost::new();
        let spent = counters_after(|| {
            cfg.infers_formula(&db, &f, &mut cost).unwrap();
        });
        assert_eq!(spent.get("route.slice"), 0);
        assert_eq!(spent.get("route.split"), 0);
        assert!(spent.get("route.generic") > 0);
    }
}
