//! Perfect Model semantics (PERF), Przymusinski \[19\].
//!
//! The *priority relation* `<` on atoms is read off the rule structure:
//! for every rule `a₁ ∨ … ∨ aₙ ← b₁ ∧ … ∧ bₖ ∧ ¬c₁ ∧ … ∧ ¬cₘ`,
//!
//! * `aᵢ ≈ aⱼ` — head atoms share a priority class,
//! * `aᵢ ≤ bⱼ` — positive body atoms have priority at least the head's,
//! * `aᵢ < cⱼ` — negated body atoms have *strictly* higher priority
//!   (intuitively: `x < y` means `y` has higher priority and is minimized
//!   more aggressively — in a stratified database, `y` lives in a lower
//!   stratum).
//!
//! `<` is closed transitively: `x < y` iff the dependency graph has a path
//! from `x` to `y` through at least one strict edge. A model `N` is
//! **preferable** to `M` (`N ≺ M`) iff `N ≠ M` and every atom
//! `x ∈ N ∖ M` is compensated by some `y ∈ M ∖ N` with `x < y`; `M` is
//! **perfect** iff no model of `DB` is preferable to it.
//!
//! Because `≺` extends `⊂` (if `N ⊂ M` the condition is vacuous), perfect
//! models are minimal models; on positive databases `<` is empty and
//! perfect = minimal — which is how Table 1's Πᵖ₂-hardness reaches PERF.
//! The preference check "∃ model N ≺ M" is a single SAT call
//! ([`is_perfect_model`]), giving the guess-and-check Πᵖ₂/Σᵖ₂ procedures
//! for inference and model existence.

use ddb_logic::cnf::database_to_cnf;
use ddb_logic::{Atom, Database, Formula, Interpretation, Literal};
use ddb_models::{minimal, Cost};
use ddb_obs::{budget, Governed};
use ddb_sat::Solver;

/// The transitive priority relation: `lt[x]` is the set of atoms `y` with
/// `x < y` (path with at least one strict edge). Computed by a BFS from
/// each atom over the doubled (node, strict-seen) graph — `O(|V|·|E|)`.
pub fn priority_lt(db: &Database) -> Vec<Interpretation> {
    let n = db.num_atoms();
    // adjacency: (target, strict) edges, deduplicated lazily.
    let mut adj: Vec<Vec<(u32, bool)>> = vec![Vec::new(); n];
    for rule in db.rules() {
        let head = rule.head();
        for (i, &a) in head.iter().enumerate() {
            for &a2 in &head[i + 1..] {
                adj[a.index()].push((a2.index() as u32, false));
                adj[a2.index()].push((a.index() as u32, false));
            }
            for &b in rule.body_pos() {
                adj[a.index()].push((b.index() as u32, false));
            }
            for &c in rule.body_neg() {
                adj[a.index()].push((c.index() as u32, true));
            }
        }
    }
    let mut lt = vec![Interpretation::empty(n); n];
    for start in 0..n {
        // reach[v][s]: v reachable with strict-seen = s.
        let mut reach = vec![[false; 2]; n];
        let mut queue = std::collections::VecDeque::new();
        reach[start][0] = true;
        queue.push_back((start, 0usize));
        while let Some((v, s)) = queue.pop_front() {
            for &(w, strict) in &adj[v] {
                let ns = usize::from(s == 1 || strict);
                let w = w as usize;
                if !reach[w][ns] {
                    reach[w][ns] = true;
                    queue.push_back((w, ns));
                }
            }
        }
        for (v, r) in reach.iter().enumerate() {
            if r[1] {
                lt[start].insert(Atom::new(v as u32));
            }
        }
    }
    lt
}

/// Whether some model of `db` is preferable to `m` — one SAT call.
/// `lt` must come from [`priority_lt`].
pub fn exists_preferable_model(
    db: &Database,
    lt: &[Interpretation],
    m: &Interpretation,
    cost: &mut Cost,
) -> Governed<bool> {
    let n = db.num_atoms();
    let mut solver = Solver::from_cnf(&database_to_cnf(db));
    solver.ensure_vars(n);
    // For each x ∉ M: taking x requires dropping some y ∈ M with x < y.
    for (xi, lt_x) in lt.iter().enumerate() {
        let x = Atom::new(xi as u32);
        if m.contains(x) {
            continue;
        }
        let mut clause: Vec<Literal> = vec![x.neg()];
        for y in lt_x.iter() {
            if m.contains(y) {
                clause.push(y.neg());
            }
        }
        solver.add_clause(&clause);
    }
    // N ≠ M.
    let difference: Vec<Literal> = (0..n)
        .map(|i| {
            let a = Atom::new(i as u32);
            Literal::with_sign(a, !m.contains(a))
        })
        .collect();
    if !solver.add_clause(&difference) {
        cost.absorb(&solver);
        return Ok(false);
    }
    let result = solver.solve();
    cost.absorb(&solver);
    Ok(result?.is_sat())
}

/// Whether `m` is a perfect model of `db` (model check + one SAT call).
pub fn is_perfect_model(db: &Database, m: &Interpretation, cost: &mut Cost) -> Governed<bool> {
    if !db.satisfied_by(m) {
        return Ok(false);
    }
    let lt = priority_lt(db);
    Ok(!exists_preferable_model(db, &lt, m, cost)?)
}

/// Visits the perfect models one at a time. Since perfect ⊆ minimal, the
/// walk enumerates minimal models (superset blocking) and filters with the
/// preference check. Each round starts with a budget checkpoint, so an
/// exhausted [`ddb_obs::Budget`] interrupts between rounds.
pub fn for_each_perfect_model(
    db: &Database,
    cost: &mut Cost,
    mut visit: impl FnMut(&Interpretation) -> bool,
) -> Governed<()> {
    let lt = priority_lt(db);
    let n = db.num_atoms();
    let mut candidates = Solver::from_cnf(&database_to_cnf(db));
    candidates.ensure_vars(n);
    let mut run = |cost: &mut Cost, candidates: &mut Solver| -> Governed<()> {
        loop {
            budget::checkpoint()?;
            if !candidates.solve()?.is_sat() {
                return Ok(());
            }
            let model = {
                let full = candidates.model();
                let mut m = Interpretation::empty(n);
                for a in full.iter().filter(|a| a.index() < n) {
                    m.insert(a);
                }
                m
            };
            let min = minimal::minimize(db, &model, cost)?;
            if !exists_preferable_model(db, &lt, &min, cost)? && !visit(&min) {
                return Ok(());
            }
            let blocking: Vec<Literal> = min.iter().map(|a| a.neg()).collect();
            if blocking.is_empty() || !candidates.add_clause(&blocking) {
                return Ok(());
            }
        }
    };
    let result = run(cost, &mut candidates);
    cost.absorb(&candidates);
    result
}

/// All perfect models, sorted.
pub fn models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("perf.models");
    let mut out = Vec::new();
    for_each_perfect_model(db, cost, |m| {
        out.push(m.clone());
        true
    })?;
    out.sort();
    Ok(out)
}

/// Literal inference `PERF(DB) ⊨ ℓ` (true in every perfect model).
pub fn infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("perf.infers_literal");
    infers_formula(db, &Formula::literal(lit.atom(), lit.is_positive()), cost)
}

/// Formula inference `PERF(DB) ⊨ F` (vacuously true when no perfect model
/// exists).
pub fn infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("perf.infers_formula");
    let mut holds = true;
    for_each_perfect_model(db, cost, |m| {
        if !f.eval(m) {
            holds = false;
            return false;
        }
        true
    })?;
    Ok(holds)
}

/// Model existence: does `db` have a perfect model? (Σᵖ₂-complete for
/// general DNDBs; guaranteed for stratified ones.)
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("perf.has_model");
    let mut found = false;
    for_each_perfect_model(db, cost, |_| {
        found = true;
        false
    })?;
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;

    fn interp(db: &Database, names: &[&str]) -> Interpretation {
        Interpretation::from_atoms(
            db.num_atoms(),
            names.iter().map(|n| db.symbols().lookup(n).unwrap()),
        )
    }

    #[test]
    fn positive_db_perfect_equals_minimal() {
        let db = parse_program("a | b. c :- a. :- b, c.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            minimal::minimal_models(&db, &mut cost).unwrap()
        );
    }

    #[test]
    fn stratified_negation_prefers_lower_strata() {
        // b :- not a. Minimal models: {a}, {b}. a has higher priority
        // (b < a), so {b} (which avoids a) is preferred over {a}:
        // is {a} perfect? N = {b}: N∖M = {b}, need y ∈ M∖N = {a} with
        // b < a ✓ → {b} ≺ {a} → {a} not perfect. {b}: N = {a}: a ∈ N∖M
        // needs y with a < y — none → not preferable; {} not a model.
        // Unique perfect model {b} — the stratified intuition.
        let db = parse_program("b :- not a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(models(&db, &mut cost).unwrap(), vec![interp(&db, &["b"])]);
    }

    #[test]
    fn two_layer_stratified_program() {
        // a. c :- not b. — perfect: {a, c}.
        let db = parse_program("a. c :- not b.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            vec![interp(&db, &["a", "c"])]
        );
        let b = db.symbols().lookup("b").unwrap();
        assert!(infers_literal(&db, b.neg(), &mut cost).unwrap());
    }

    #[test]
    fn disjunctive_stratified() {
        // a | b. c :- not a. — priority: c < a. Minimal models of DB:
        // {a}, {b,c}. {a}: preferable N ≠ {a} with new atoms compensated:
        // N = {b,c}: N∖M = {b,c}: b needs y ∈ {a} with b < a? b ≈ a (head
        // mates) but not strict → no → {b,c} ⊀ {a} → {a} perfect.
        // {b,c}: N = {a}: a ∈ N∖M needs a < y, y ∈ {b,c}: a < b? no.
        // a < c? strict edges point c → a... c < a means a has higher
        // priority; a < c false → {a} ⊀ {b,c} → {b,c} perfect too.
        let db = parse_program("a | b. c :- not a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            vec![interp(&db, &["a"]), interp(&db, &["b", "c"])]
        );
    }

    #[test]
    fn unstratifiable_may_lack_perfect_models() {
        // a :- not a. has no perfect model: the only model candidates
        // {a} — is it perfect? N must be a model: models are {a} only
        // (∅ ⊭ a :- not a). No N ≠ M exists → {a} IS perfect?
        // Careful: models of the clause a ∨ a = {a}... clause is a ← ¬a
        // ≡ a ∨ a ≡ a. So M(DB) = {{a}} and {a} is trivially perfect.
        let db = parse_program("a :- not a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(models(&db, &mut cost).unwrap(), vec![interp(&db, &["a"])]);

        // A genuinely perfect-model-free database: even loop with strict
        // mutual priorities collapses preference into a cycle:
        // a :- not b. b :- not a. — minimal models {a}, {b}; a < b and
        // b < a (both strict). {a}: N={b}: b∖ needs y∈{a}: b < a ✓ →
        // preferable → {a} not perfect; symmetrically {b} not perfect.
        let db2 = parse_program("a :- not b. b :- not a.").unwrap();
        assert!(models(&db2, &mut cost).unwrap().is_empty());
        assert!(!has_model(&db2, &mut cost).unwrap());
    }

    #[test]
    fn perfect_subset_of_stable_on_stratified() {
        // For stratified databases the perfect model is the unique stable
        // model (Przymusinski): check on a 3-layer program.
        let db = parse_program("a. b :- not a. c :- not b. d | e :- c.").unwrap();
        let mut cost = Cost::new();
        let perfect = models(&db, &mut cost).unwrap();
        let stable = crate::dsm::models(&db, &mut cost).unwrap();
        assert_eq!(perfect, stable);
        assert_eq!(perfect.len(), 2); // {a,c,d}, {a,c,e}
    }

    #[test]
    fn preference_extends_subset() {
        let db = parse_program("a | b. c :- a.").unwrap();
        let lt = priority_lt(&db);
        let mut cost = Cost::new();
        // {a, b, c} is a non-minimal model: some preferable model exists.
        assert!(
            exists_preferable_model(&db, &lt, &interp(&db, &["a", "b", "c"]), &mut cost).unwrap()
        );
        assert!(!is_perfect_model(&db, &interp(&db, &["a", "b", "c"]), &mut cost).unwrap());
    }

    #[test]
    fn priority_relation_structure() {
        // c :- not b. b :- not a. — strict chains: c < b, b < a, and by
        // transitivity c < a.
        let db = parse_program("c :- not b. b :- not a.").unwrap();
        let lt = priority_lt(&db);
        let a = db.symbols().lookup("a").unwrap();
        let b = db.symbols().lookup("b").unwrap();
        let c = db.symbols().lookup("c").unwrap();
        assert!(lt[c.index()].contains(b));
        assert!(lt[b.index()].contains(a));
        assert!(lt[c.index()].contains(a), "transitivity");
        assert!(!lt[a.index()].contains(b));
    }
}
