//! The Extended Generalized Closed World Assumption (EGCWA), Yahya &
//! Henschen \[30\].
//!
//! EGCWA strengthens GCWA by adding to `DB` every *integrity clause*
//! `¬a₁ ∨ … ∨ ¬aₙ` (equivalently `← a₁ ∧ … ∧ aₙ`) that is true in every
//! minimal model. The resulting model set is exactly the minimal models:
//! `EGCWA(DB) = MM(DB)` — the characterization the paper uses, and the one
//! implemented here.
//!
//! * Literal and formula inference: truth in all minimal models — one Πᵖ₂
//!   CEGAR query (Πᵖ₂-complete; hardness via the 2QBF reduction in
//!   `ddb-reductions`).
//! * Model existence: `MM(DB) ≠ ∅ ⟺ DB` satisfiable. For *positive* DBs
//!   this is `O(1)` (the full interpretation is always a model); with
//!   integrity clauses it is one SAT call (NP-complete — Table 2).

use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_models::{circumscribe, classical, minimal, Cost};
use ddb_obs::Governed;

/// Literal inference `EGCWA(DB) ⊨ ℓ`: truth in all minimal models.
pub fn infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("egcwa.infers_literal");
    let f = Formula::literal(lit.atom(), lit.is_positive());
    circumscribe::holds_in_all_minimal_models(db, &f, cost)
}

/// Formula inference `EGCWA(DB) ⊨ F`: truth in all minimal models.
pub fn infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("egcwa.infers_formula");
    circumscribe::holds_in_all_minimal_models(db, f, cost)
}

/// Model existence. `O(1)` for databases without integrity clauses (a
/// positive database is satisfied by the full interpretation; stripping
/// down yields a minimal model), one SAT call otherwise.
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("egcwa.has_model");
    if !db.has_integrity_clauses() && !db.has_negation() {
        return Ok(true); // O(1): V ⊨ DB, so MM(DB) ≠ ∅.
    }
    classical::is_satisfiable(db, cost)
}

/// The characteristic model set `EGCWA(DB) = MM(DB)`.
pub fn models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("egcwa.models");
    minimal::minimal_models(db, cost)
}

/// The integrity clauses EGCWA adds: the subset-minimal atom sets
/// `{a₁,…,aₙ}` such that `← a₁ ∧ … ∧ aₙ` holds in every minimal model
/// (no minimal model contains all of them).
///
/// Computed by **hypergraph dualization**: such sets are exactly the
/// minimal transversals of `{V ∖ M : M ∈ MM(DB)}`
/// ([`ddb_models::transversal`] spells out the equivalence). Returns
/// `None` when the `cap` on intermediate transversal sets is exceeded
/// (the output can be exponential); the trivial singleton-`∅` answer for
/// an inconsistent database is represented as `Some(vec![vec![]])` (the
/// empty clause holds).
pub fn derived_integrity_clauses(
    db: &Database,
    cap: usize,
    cost: &mut Cost,
) -> Governed<Option<Vec<Vec<ddb_logic::Atom>>>> {
    let mm = minimal::minimal_models(db, cost)?;
    let n = db.num_atoms();
    if mm.is_empty() {
        return Ok(Some(vec![Vec::new()]));
    }
    let complements: Vec<Interpretation> = mm
        .iter()
        .map(|m| {
            let mut c = Interpretation::full(n);
            c.difference_with(m);
            c
        })
        .collect();
    // A minimal model = V would give an empty complement edge: then no
    // nonempty atom set is blocked (every superset question is moot) —
    // no derived clauses at all.
    if complements.iter().any(Interpretation::is_empty_set) {
        return Ok(Some(Vec::new()));
    }
    let Some(transversals) = ddb_models::transversal::minimal_transversals(n, &complements, cap)?
    else {
        return Ok(None);
    };
    Ok(Some(
        transversals
            .into_iter()
            .map(|t| t.iter().collect())
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};
    use ddb_logic::Atom;

    #[test]
    fn egcwa_infers_integrity_clauses_gcwa_misses() {
        // The classic separating example: DB = {a ∨ b}. GCWA infers
        // neither ¬a nor ¬b; EGCWA additionally infers ¬(a ∧ b) because no
        // minimal model contains both.
        let db = parse_program("a | b.").unwrap();
        let mut cost = Cost::new();
        let f = parse_formula("!(a & b)", db.symbols()).unwrap();
        assert!(infers_formula(&db, &f, &mut cost).unwrap());
        // GCWA does not infer it: {a,b} ∈ GCWA(DB).
        assert!(!crate::gcwa::infers_formula(&db, &f, &mut cost).unwrap());
    }

    #[test]
    fn literal_inference_equals_gcwa_on_literals() {
        // On literals EGCWA and GCWA coincide (both check MM).
        let db = parse_program("a | b. c :- a, b. d :- a.").unwrap();
        let mut cost = Cost::new();
        for i in 0..db.num_atoms() {
            for sign in [true, false] {
                let l = Literal::with_sign(Atom::new(i as u32), sign);
                assert_eq!(
                    infers_literal(&db, l, &mut cost).unwrap(),
                    crate::gcwa::infers_literal(&db, l, &mut cost).unwrap()
                );
            }
        }
    }

    #[test]
    fn model_existence() {
        let mut cost = Cost::new();
        assert!(has_model(&parse_program("a | b.").unwrap(), &mut cost).unwrap());
        assert!(has_model(&parse_program("a | b. :- a.").unwrap(), &mut cost).unwrap());
        assert!(!has_model(&parse_program("a. :- a.").unwrap(), &mut cost).unwrap());
    }

    #[test]
    fn positive_existence_is_constant_time() {
        let db = parse_program("a | b. c :- a.").unwrap();
        let mut cost = Cost::new();
        assert!(has_model(&db, &mut cost).unwrap());
        assert_eq!(cost.sat_calls, 0, "positive case must not call the oracle");
    }

    #[test]
    fn models_are_minimal_models() {
        let db = parse_program("a | b. b | c.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            minimal::minimal_models(&db, &mut cost).unwrap()
        );
    }

    #[test]
    fn derived_clauses_on_disjunction() {
        let db = parse_program("a | b.").unwrap();
        let mut cost = Cost::new();
        let clauses = derived_integrity_clauses(&db, 1000, &mut cost)
            .unwrap()
            .unwrap();
        // Exactly one minimal derived integrity clause: ← a ∧ b.
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].len(), 2);
    }

    #[test]
    fn derived_clauses_inconsistent_db() {
        let db = parse_program("a. :- a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            derived_integrity_clauses(&db, 1000, &mut cost).unwrap(),
            Some(vec![Vec::new()])
        );
    }

    #[test]
    fn derived_clauses_match_definition_on_random_dbs() {
        use ddb_workloads::random::{random_db, DbSpec};
        for seed in 0..25 {
            let db = random_db(&DbSpec::positive(5, 8), seed);
            let mut cost = Cost::new();
            let clauses = derived_integrity_clauses(&db, 100_000, &mut cost)
                .unwrap()
                .unwrap();
            let mm = minimal::minimal_models(&db, &mut cost).unwrap();
            // Each derived clause: no minimal model contains all its atoms.
            for c in &clauses {
                assert!(
                    mm.iter().all(|m| !c.iter().all(|&a| m.contains(a))),
                    "seed {seed}: clause {c:?} not valid"
                );
                // Minimality: dropping any atom breaks validity.
                for k in 0..c.len() {
                    let smaller: Vec<_> = c
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != k)
                        .map(|(_, &a)| a)
                        .collect();
                    assert!(
                        !smaller.is_empty()
                            && mm.iter().any(|m| smaller.iter().all(|&a| m.contains(a)))
                            || smaller.is_empty() && !mm.is_empty(),
                        "seed {seed}: clause {c:?} not minimal"
                    );
                }
            }
            // Completeness: every 1- and 2-atom blocked set is covered by
            // some derived clause.
            let n = db.num_atoms();
            for mask in 1u32..1 << n {
                let set: Vec<ddb_logic::Atom> = (0..n as u32)
                    .filter(|&i| mask >> i & 1 == 1)
                    .map(ddb_logic::Atom::new)
                    .collect();
                let blocked = mm.iter().all(|m| !set.iter().all(|&a| m.contains(a)));
                let covered = clauses.iter().any(|c| c.iter().all(|a| set.contains(a)));
                assert_eq!(
                    blocked && !mm.is_empty(),
                    covered && !mm.is_empty(),
                    "seed {seed}: set {set:?}"
                );
            }
        }
    }

    #[test]
    fn derived_clauses_cap() {
        // Many disjoint disjunctions → exponentially many derived clauses.
        let db = parse_program("a0 | b0. a1 | b1. a2 | b2. a3 | b3. a4 | b4.").unwrap();
        let mut cost = Cost::new();
        assert!(derived_integrity_clauses(&db, 3, &mut cost)
            .unwrap()
            .is_none());
        let clauses = derived_integrity_clauses(&db, 100_000, &mut cost)
            .unwrap()
            .unwrap();
        // One per pair (← aᵢ ∧ bᵢ) plus nothing else at minimality.
        assert_eq!(clauses.len(), 5);
    }
}
