//! The Careful Closed World Assumption (CCWA), Gelfond & Przymusinska
//! \[11\].
//!
//! CCWA generalizes GCWA by a partition ⟨P;Q;Z⟩ of the vocabulary: only
//! atoms of `P` are closed off, falsity is judged against the
//! ⟨P;Z⟩-minimal models, and
//!
//! `CCWA(DB) = {M ∈ M(DB) : ∀x ∈ P. MM(DB;P;Z) ⊨ ¬x ⇒ M ⊨ ¬x}`.
//!
//! GCWA is the special case `P = V`, `Q = Z = ∅`.
//!
//! * Formula (and literal) inference: compute the CCWA-false set
//!   `N ⊆ P` (`|P|` Σᵖ₂ queries — or `O(log n)` with the census ablation),
//!   then one coNP entailment `DB ∪ ¬N ⊨ F`. The paper places this in
//!   `P^{Σᵖ₂}[O(log n)]` and proves Πᵖ₂-hardness; unlike GCWA, no
//!   literal-inference shortcut to a single Πᵖ₂ query is available, since
//!   a model in `CCWA(DB)` need not sit above a ⟨P;Z⟩-minimal model with
//!   the *same fixed part*.
//! * Model existence: `CCWA(DB) ⊇ MM(DB;P;Z)`, so nonemptiness is again
//!   plain satisfiability (one SAT call).

use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_models::{circumscribe, classical, Cost, Partition};
use ddb_obs::Governed;

/// The CCWA-false atoms `N = {x ∈ P : MM(DB;P;Z) ⊨ ¬x}`.
pub fn false_atoms(db: &Database, part: &Partition, cost: &mut Cost) -> Governed<Interpretation> {
    let n = db.num_atoms();
    let mut out = Interpretation::empty(n);
    for a in part.p().iter() {
        let f = Formula::atom(a);
        if !circumscribe::exists_pz_minimal_model_satisfying(db, part, &f, cost)? {
            out.insert(a);
        }
    }
    Ok(out)
}

/// Literal inference `CCWA(DB) ⊨ ℓ` (via the formula path).
pub fn infers_literal(
    db: &Database,
    part: &Partition,
    lit: Literal,
    cost: &mut Cost,
) -> Governed<bool> {
    let _span = ddb_obs::span("ccwa.infers_literal");
    infers_formula(
        db,
        part,
        &Formula::literal(lit.atom(), lit.is_positive()),
        cost,
    )
}

/// Formula inference `CCWA(DB) ⊨ F`: compute `N`, then `DB ∪ ¬N ⊨ F`.
pub fn infers_formula(
    db: &Database,
    part: &Partition,
    f: &Formula,
    cost: &mut Cost,
) -> Governed<bool> {
    let _span = ddb_obs::span("ccwa.infers_formula");
    let n_set = false_atoms(db, part, cost)?;
    let units: Vec<Literal> = n_set.iter().map(|a| a.neg()).collect();
    classical::entails(db, &units, f, cost)
}

/// Model existence: `CCWA(DB) ≠ ∅ ⟺ DB` satisfiable.
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("ccwa.has_model");
    classical::is_satisfiable(db, cost)
}

/// The characteristic model set `CCWA(DB)` (enumerative; test/example
/// sized).
pub fn models(db: &Database, part: &Partition, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("ccwa.models");
    let n_set = false_atoms(db, part, cost)?;
    Ok(classical::all_models(db, cost)?
        .into_iter()
        .filter(|m| n_set.iter().all(|x| !m.contains(x)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};
    use ddb_logic::Atom;

    fn part_pq(db: &Database, p: &[&str], q: &[&str]) -> Partition {
        Partition::from_p_q(
            db.num_atoms(),
            p.iter().map(|n| db.symbols().lookup(n).unwrap()),
            q.iter().map(|n| db.symbols().lookup(n).unwrap()),
        )
    }

    #[test]
    fn reduces_to_gcwa_when_p_is_everything() {
        let db = parse_program("a | b. c :- a, b. d :- c.").unwrap();
        let part = Partition::minimize_all(db.num_atoms());
        let mut cost = Cost::new();
        for i in 0..db.num_atoms() {
            for sign in [true, false] {
                let l = Literal::with_sign(Atom::new(i as u32), sign);
                assert_eq!(
                    infers_literal(&db, &part, l, &mut cost).unwrap(),
                    crate::gcwa::infers_literal(&db, l, &mut cost).unwrap(),
                    "atom {i} sign {sign}"
                );
            }
        }
    }

    #[test]
    fn fixed_atoms_are_not_closed() {
        // a ∨ b with P={a}, Q={b}: ⟨P;Z⟩-minimal models are {b} (Q-part
        // {b}) and {a} (Q-part ∅, must take a). a occurs in a minimal
        // model, so ¬a is NOT CCWA-inferred; b is fixed and never closed.
        let db = parse_program("a | b.").unwrap();
        let part = part_pq(&db, &["a"], &["b"]);
        let mut cost = Cost::new();
        assert!(!infers_literal(
            &db,
            &part,
            db.symbols().lookup("a").unwrap().neg(),
            &mut cost
        )
        .unwrap());
        assert!(!infers_literal(
            &db,
            &part,
            db.symbols().lookup("b").unwrap().neg(),
            &mut cost
        )
        .unwrap());
    }

    #[test]
    fn varying_atoms_allow_closing() {
        // a ∨ b with P={a}, Z={b}: minimality compares across different
        // b-values, so {b} < {a}... both have same Q-part (∅), P-part of
        // {b} is ∅ ⊂ {a}. Hence no ⟨P;Z⟩-minimal model contains a → ¬a.
        let db = parse_program("a | b.").unwrap();
        let part = part_pq(&db, &["a"], &[]);
        let mut cost = Cost::new();
        assert!(infers_literal(
            &db,
            &part,
            db.symbols().lookup("a").unwrap().neg(),
            &mut cost
        )
        .unwrap());
    }

    #[test]
    fn formula_inference_matches_model_filter() {
        let db = parse_program("a | b. c | d :- a. :- b, d.").unwrap();
        let part = part_pq(&db, &["a", "c"], &["b"]);
        let mut cost = Cost::new();
        let cm = models(&db, &part, &mut cost).unwrap();
        assert!(!cm.is_empty());
        for text in ["!a | c", "b | a", "!(c & d)", "!c", "d -> a"] {
            let f = parse_formula(text, db.symbols()).unwrap();
            let expected = cm.iter().all(|m| f.eval(m));
            assert_eq!(
                infers_formula(&db, &part, &f, &mut cost).unwrap(),
                expected,
                "{text}"
            );
        }
    }

    #[test]
    fn existence_is_satisfiability() {
        let mut cost = Cost::new();
        let db = parse_program("a | b. :- b.").unwrap();
        let part = part_pq(&db, &["a"], &[]);
        assert!(has_model(&db, &mut cost).unwrap());
        let _ = part;
        let bad = parse_program("a. :- a.").unwrap();
        assert!(!has_model(&bad, &mut cost).unwrap());
    }
}
