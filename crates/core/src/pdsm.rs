//! Partial Disjunctive Stable Model semantics (PDSM), Przymusinski \[20\],
//! extending the well-founded semantics of van Gelder, Ross & Schlipf
//! \[29\] to disjunctive databases.
//!
//! A *partial* (3-valued) interpretation `I` is a partial stable model iff
//! `I` is a **truth-minimal** 3-valued model of the 3-valued reduct
//! `DB^I` ([`crate::reduct::reduct3`]), where minimality is pointwise in
//! the order `0 < ½ < 1`.
//!
//! The implementation works over the standard **pair encoding**: each atom
//! `x` becomes two Boolean variables, `x¹` ("value = 1", the first `n`
//! variables) and `x²` ("value ≥ ½", the next `n`), with `x¹ → x²`.
//! Three-valued rule satisfaction `val(head) ≥ val(body)` splits into two
//! clauses per rule (the value-1 and value-½ thresholds), so candidate
//! partial models come from plain SAT enumeration; the stability check is
//! one more SAT call (search a strictly smaller 3-valued model of the
//! reduct). Formula inference translates the query through the same pair
//! encoding ([`encode_ge1`]).
//!
//! On positive databases PDSM and DSM coincide for the problems studied
//! (Przymusinski) — the total partial stable models are exactly the stable
//! models, and positive facts force values away from ½; the
//! `pdsm_dsm_positive` test pins this.

use crate::reduct::{reduct3, satisfies_reduct3, Reduct3Rule};
use ddb_logic::cnf::{Cnf, CnfBuilder};
use ddb_logic::{
    Atom, Database, Formula, Interpretation, Literal, PartialInterpretation, TruthValue,
};
use ddb_models::Cost;
use ddb_obs::{budget, Governed};
use ddb_sat::Solver;

/// Builds the pair-encoded CNF of the 3-valued models of `db` (over `2n`
/// variables: `x¹ = x`, `x² = n + x`).
pub fn three_valued_cnf(db: &Database) -> Cnf {
    let n = db.num_atoms();
    let mut b = CnfBuilder::new(2 * n);
    let v1 = |a: Atom| a;
    let v2 = |a: Atom| Atom::new((n + a.index()) as u32);
    for i in 0..n {
        let a = Atom::new(i as u32);
        b.add_clause(vec![v1(a).neg(), v2(a).pos()]); // x¹ → x²
    }
    for rule in db.rules() {
        // Threshold 1: all b¹ ∧ all ¬c "≥1" (i.e. c = 0, ¬c²) → some h¹.
        let mut c1: Vec<Literal> = rule.body_pos().iter().map(|&x| v1(x).neg()).collect();
        c1.extend(rule.body_neg().iter().map(|&x| v2(x).pos()));
        c1.extend(rule.head().iter().map(|&x| v1(x).pos()));
        b.add_clause(c1);
        // Threshold ½: all b² ∧ all ¬c "≥½" (c ≤ ½, ¬c¹) → some h².
        let mut ch: Vec<Literal> = rule.body_pos().iter().map(|&x| v2(x).neg()).collect();
        ch.extend(rule.body_neg().iter().map(|&x| v1(x).pos()));
        ch.extend(rule.head().iter().map(|&x| v2(x).pos()));
        b.add_clause(ch);
    }
    b.finish()
}

/// Decodes a pair-encoded assignment (over ≥ `2n` variables) into a
/// partial interpretation over `n` atoms.
pub fn decode(m: &Interpretation, n: usize) -> PartialInterpretation {
    let mut p = PartialInterpretation::undefined(n);
    for i in 0..n {
        let a = Atom::new(i as u32);
        let a2 = Atom::new((n + i) as u32);
        if m.contains(a) {
            p.set(a, TruthValue::True);
        } else if !m.contains(a2) {
            p.set(a, TruthValue::False);
        }
    }
    p
}

/// Pair-encoded translation of "`f` has value 1" (used to express
/// counterexamples `value(F) ≠ 1` under the encoding).
pub fn encode_ge1(f: &Formula, n: usize) -> Formula {
    translate(f, n, true)
}

/// Pair-encoded translation of "`f` has value ≥ ½".
pub fn encode_ge_half(f: &Formula, n: usize) -> Formula {
    translate(f, n, false)
}

fn translate(f: &Formula, n: usize, level1: bool) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => {
            if level1 {
                Formula::Atom(*a)
            } else {
                Formula::Atom(Atom::new((n + a.index()) as u32))
            }
        }
        // val(¬g) ≥ 1 ⟺ val(g) = 0 ⟺ ¬(val(g) ≥ ½); dually for ≥ ½.
        Formula::Not(g) => translate(g, n, !level1).negated(),
        Formula::And(fs) => Formula::And(fs.iter().map(|g| translate(g, n, level1)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|g| translate(g, n, level1)).collect()),
        Formula::Implies(l, r) => Formula::Or(vec![
            translate(l, n, !level1).negated(),
            translate(r, n, level1),
        ]),
        Formula::Iff(l, r) => Formula::And(vec![
            Formula::Or(vec![
                translate(l, n, !level1).negated(),
                translate(r, n, level1),
            ]),
            Formula::Or(vec![
                translate(r, n, !level1).negated(),
                translate(l, n, level1),
            ]),
        ]),
    }
}

/// Whether some 3-valued model of the reduct rules is strictly below `i`
/// in the truth order — one SAT call over the pair encoding.
fn exists_smaller_reduct_model(
    rules: &[Reduct3Rule],
    i: &PartialInterpretation,
    cost: &mut Cost,
) -> Governed<bool> {
    let n = i.num_atoms();
    let mut solver = Solver::new();
    solver.ensure_vars(2 * n);
    let v1 = |a: Atom| a;
    let v2 = |a: Atom| Atom::new((n + a.index()) as u32);
    for k in 0..n {
        let a = Atom::new(k as u32);
        solver.add_clause(&[v1(a).neg(), v2(a).pos()]);
    }
    for rule in rules {
        match rule.body_const {
            TruthValue::True => {
                let mut c1: Vec<Literal> = rule.body_pos.iter().map(|&x| v1(x).neg()).collect();
                c1.extend(rule.head.iter().map(|&x| v1(x).pos()));
                solver.add_clause(&c1);
                let mut ch: Vec<Literal> = rule.body_pos.iter().map(|&x| v2(x).neg()).collect();
                ch.extend(rule.head.iter().map(|&x| v2(x).pos()));
                solver.add_clause(&ch);
            }
            TruthValue::Undefined => {
                // Body can reach at most ½: only the ½ threshold binds.
                let mut ch: Vec<Literal> = rule.body_pos.iter().map(|&x| v2(x).neg()).collect();
                ch.extend(rule.head.iter().map(|&x| v2(x).pos()));
                solver.add_clause(&ch);
            }
            TruthValue::False => {} // body is 0: rule trivially satisfied
        }
    }
    // J ≤ I pointwise, and strictly below somewhere.
    let mut strict: Vec<Literal> = Vec::new();
    for k in 0..n {
        let a = Atom::new(k as u32);
        match i.value(a) {
            TruthValue::True => strict.push(v1(a).neg()),
            TruthValue::Undefined => {
                solver.add_clause(&[v1(a).neg()]);
                strict.push(v2(a).neg());
            }
            TruthValue::False => {
                solver.add_clause(&[v2(a).neg()]);
            }
        }
    }
    if strict.is_empty() {
        return Ok(false); // I is the bottom interpretation
    }
    if !solver.add_clause(&strict) {
        cost.absorb(&solver);
        return Ok(false);
    }
    let result = solver.solve();
    cost.absorb(&solver);
    Ok(result?.is_sat())
}

/// Whether `i` is a partial stable model of `db`: `i` satisfies its own
/// reduct and no strictly smaller 3-valued interpretation does.
pub fn is_partial_stable(
    db: &Database,
    i: &PartialInterpretation,
    cost: &mut Cost,
) -> Governed<bool> {
    let rules = reduct3(db, i);
    Ok(satisfies_reduct3(&rules, i) && !exists_smaller_reduct_model(&rules, i, cost)?)
}

/// Visits partial stable models one at a time; `extra` (if given) is a
/// pair-encoded constraint candidates must satisfy. Callback returns
/// `false` to stop. Each round starts with a budget checkpoint, so an
/// exhausted [`ddb_obs::Budget`] interrupts between rounds.
pub fn for_each_partial_stable(
    db: &Database,
    extra: Option<&Formula>,
    cost: &mut Cost,
    mut visit: impl FnMut(&PartialInterpretation) -> bool,
) -> Governed<()> {
    let n = db.num_atoms();
    let base = three_valued_cnf(db);
    let mut b = CnfBuilder::new(base.num_vars);
    for c in &base.clauses {
        b.add_clause(c.clone());
    }
    if let Some(f) = extra {
        b.assert_formula(f);
    }
    let cnf = b.finish();
    let mut candidates = Solver::from_cnf(&cnf);
    candidates.ensure_vars(cnf.num_vars.max(2 * n));
    let mut run = |cost: &mut Cost, candidates: &mut Solver| -> Governed<()> {
        loop {
            budget::checkpoint()?;
            if !candidates.solve()?.is_sat() {
                return Ok(());
            }
            let assignment = {
                let full = candidates.model();
                let mut m = Interpretation::empty(2 * n);
                for a in full.iter().filter(|a| a.index() < 2 * n) {
                    m.insert(a);
                }
                m
            };
            let candidate = decode(&assignment, n);
            if is_partial_stable(db, &candidate, cost)? && !visit(&candidate) {
                return Ok(());
            }
            // Block this exact pair-encoded assignment.
            let blocking: Vec<Literal> = (0..2 * n)
                .map(|i| {
                    let a = Atom::new(i as u32);
                    Literal::with_sign(a, !assignment.contains(a))
                })
                .collect();
            if blocking.is_empty() || !candidates.add_clause(&blocking) {
                return Ok(());
            }
        }
    };
    let result = run(cost, &mut candidates);
    cost.absorb(&candidates);
    result
}

/// All partial stable models.
pub fn models(db: &Database, cost: &mut Cost) -> Governed<Vec<PartialInterpretation>> {
    let _span = ddb_obs::span("pdsm.models");
    let mut out = Vec::new();
    for_each_partial_stable(db, None, cost, |i| {
        out.push(i.clone());
        true
    })?;
    out.sort_by_key(|p| (p.true_set().clone(), p.false_set().clone()));
    Ok(out)
}

/// Literal inference `PDSM(DB) ⊨ ℓ`: the literal has value 1 in every
/// partial stable model.
pub fn infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("pdsm.infers_literal");
    infers_formula(db, &Formula::literal(lit.atom(), lit.is_positive()), cost)
}

/// Formula inference `PDSM(DB) ⊨ F`: `F` has value 1 in every partial
/// stable model (vacuously true when none exists).
pub fn infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("pdsm.infers_formula");
    let not_value1 = encode_ge1(f, db.num_atoms()).negated();
    let mut holds = true;
    for_each_partial_stable(db, Some(&not_value1), cost, |i| {
        debug_assert_ne!(f.eval3(i), TruthValue::True);
        holds = false;
        false
    })?;
    Ok(holds)
}

/// Model existence: does `db` have a partial stable model?
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("pdsm.has_model");
    let mut found = false;
    for_each_partial_stable(db, None, cost, |_| {
        found = true;
        false
    })?;
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    fn partial(db: &Database, tru: &[&str], undef: &[&str]) -> PartialInterpretation {
        let n = db.num_atoms();
        let mut p = PartialInterpretation::new(Interpretation::empty(n), Interpretation::full(n));
        for name in undef {
            p.set(db.symbols().lookup(name).unwrap(), TruthValue::Undefined);
        }
        for name in tru {
            p.set(db.symbols().lookup(name).unwrap(), TruthValue::True);
        }
        p
    }

    #[test]
    fn odd_loop_has_undefined_model() {
        // a :- not a. — no (total) stable model, but the partial stable
        // model a = ½ exists (well-founded-style).
        let db = parse_program("a :- not a.").unwrap();
        let mut cost = Cost::new();
        assert!(has_model(&db, &mut cost).unwrap());
        let ms = models(&db, &mut cost).unwrap();
        assert_eq!(ms, vec![partial(&db, &[], &["a"])]);
        assert!(!crate::dsm::has_model(&db, &mut cost).unwrap());
    }

    #[test]
    fn even_loop_partial_stable_models() {
        // a :- not b. b :- not a. — three partial stable models:
        // ⟨{a},{b}⟩, ⟨{b},{a}⟩ and the all-undefined one.
        let db = parse_program("a :- not b. b :- not a.").unwrap();
        let mut cost = Cost::new();
        let ms = models(&db, &mut cost).unwrap();
        assert_eq!(ms.len(), 3);
        assert!(ms.contains(&partial(&db, &["a"], &[])));
        assert!(ms.contains(&partial(&db, &["b"], &[])));
        assert!(ms.contains(&partial(&db, &[], &["a", "b"])));
    }

    #[test]
    fn pdsm_dsm_positive() {
        // On positive databases the partial stable models are the minimal
        // models (all total), i.e. exactly DSM.
        for src in ["a | b.", "a | b. c :- a. :- b, c.", "a. b | c :- a."] {
            let db = parse_program(src).unwrap();
            let mut cost = Cost::new();
            let pdsm = models(&db, &mut cost).unwrap();
            let dsm = crate::dsm::models(&db, &mut cost).unwrap();
            let totals: Vec<Interpretation> = pdsm
                .iter()
                .filter(|p| p.is_total())
                .map(|p| p.to_total())
                .collect();
            assert_eq!(totals, dsm, "program: {src}");
            assert_eq!(pdsm.len(), dsm.len(), "no non-total models on {src}");
        }
    }

    #[test]
    fn total_partial_stable_iff_stable() {
        // For any database, total partial stable models = stable models.
        for src in [
            "a :- not b. b :- not a.",
            "a | b :- not c.",
            "a :- not a. b.",
            "p :- not q. q :- not r.",
        ] {
            let db = parse_program(src).unwrap();
            let mut cost = Cost::new();
            let stable = crate::dsm::models(&db, &mut cost).unwrap();
            let totals: Vec<Interpretation> = models(&db, &mut cost)
                .unwrap()
                .into_iter()
                .filter(|p| p.is_total())
                .map(|p| p.to_total())
                .collect();
            assert_eq!(totals, stable, "program: {src}");
        }
    }

    #[test]
    fn cautious_inference_weaker_than_dsm() {
        // a :- not a. b. — DSM has no models (vacuous inference: infers
        // everything); PDSM has ⟨{b}, a=½⟩: infers b but not a.
        let db = parse_program("a :- not a. b.").unwrap();
        let mut cost = Cost::new();
        let b_lit = db.symbols().lookup("b").unwrap().pos();
        let a_lit = db.symbols().lookup("a").unwrap().pos();
        assert!(infers_literal(&db, b_lit, &mut cost).unwrap());
        assert!(!infers_literal(&db, a_lit, &mut cost).unwrap());
        assert!(!infers_literal(&db, a_lit.complement(), &mut cost).unwrap());
        assert!(crate::dsm::infers_literal(&db, a_lit, &mut cost).unwrap()); // vacuous
    }

    #[test]
    fn formula_inference_three_valued() {
        let db = parse_program("a :- not b. b :- not a. c.").unwrap();
        let mut cost = Cost::new();
        // c is true in all three partial stable models.
        let f = parse_formula("c", db.symbols()).unwrap();
        assert!(infers_formula(&db, &f, &mut cost).unwrap());
        // a ∨ b has value ½ in the all-undefined model → not inferred
        // (contrast DSM, where it holds in both stable models).
        let g = parse_formula("a | b", db.symbols()).unwrap();
        assert!(!infers_formula(&db, &g, &mut cost).unwrap());
        assert!(crate::dsm::infers_formula(&db, &g, &mut cost).unwrap());
    }

    #[test]
    fn integrity_clauses_constrain_pdsm() {
        let db = parse_program("a :- not b. b :- not a. :- a.").unwrap();
        let mut cost = Cost::new();
        let ms = models(&db, &mut cost).unwrap();
        // ⟨{b},{a}⟩ survives; the all-undefined one: does ½ satisfy
        // ← a? Integrity head is empty (value 0); body a = ½ → need
        // 0 ≥ ½ — fails. So only ⟨{b},{a}⟩.
        assert_eq!(ms, vec![partial(&db, &["b"], &[])]);
    }

    #[test]
    fn encode_roundtrip_on_totals() {
        // The pair encoding of "value(F) = 1" must agree with eval3 on
        // arbitrary 3-valued interpretations.
        let db = parse_program("a. b. c.").unwrap();
        let n = db.num_atoms();
        let f = parse_formula("(a -> b) & !(c & a) | (b <-> c)", db.symbols()).unwrap();
        let enc1 = encode_ge1(&f, n);
        let ench = encode_ge_half(&f, n);
        // Enumerate all 3^3 partial interpretations; build the pair-encoded
        // 2n assignment and compare.
        for code in 0..27u32 {
            let mut p = PartialInterpretation::undefined(n);
            let mut pair = Interpretation::empty(2 * n);
            let mut c = code;
            for i in 0..n {
                let a = Atom::new(i as u32);
                match c % 3 {
                    0 => {
                        p.set(a, TruthValue::False);
                    }
                    1 => {
                        p.set(a, TruthValue::Undefined);
                        pair.insert(Atom::new((n + i) as u32));
                    }
                    _ => {
                        p.set(a, TruthValue::True);
                        pair.insert(a);
                        pair.insert(Atom::new((n + i) as u32));
                    }
                }
                c /= 3;
            }
            let v = f.eval3(&p);
            assert_eq!(enc1.eval(&pair), v == TruthValue::True, "code {code}");
            assert_eq!(ench.eval(&pair), v != TruthValue::False, "code {code}");
        }
    }
}
