//! The Disjunctive Database Rule (DDR), Ross & Topor \[23\] — equivalent
//! to the Weak GCWA of Rajasekar, Lobo & Minker \[21\].
//!
//! DDR adds `¬x` for every atom `x` not occurring in `T_DB ↑ ω`:
//! `DDR(DB) = {M ∈ M(DB) : M ⊨ ¬x for every non-occurring x}`. The
//! occurrence set is the polynomial *active-atom closure*
//! ([`ddb_models::fixpoint::active_atoms`]), so:
//!
//! * **negative-literal inference on integrity-free databases is in P with
//!   zero oracle calls** (Chan) — the only tractable cells of Table 1
//!   together with PWS: `DDR(DB) ⊨ ¬x ⟺ x ∉ active(DB)`, because the
//!   active set itself is then a model of `DB ∪ ¬N`;
//! * with integrity clauses, literal inference is one coNP entailment
//!   (coNP-complete — Table 2), and positive-literal inference is a coNP
//!   entailment in both tables;
//! * formula inference is one coNP entailment (coNP-complete);
//! * model existence: without integrity clauses `O(1)` (the active set is
//!   a model); otherwise one SAT call.
//!
//! DDR deliberately ignores integrity clauses when computing the
//! occurrence set (the paper's Example 3.1: from
//! `{a ∨ b, ← a∧b, c ← a∧b}` DDR does *not* infer `¬c`) — that behaviour
//! is inherited from the fixpoint module and pinned by tests there.
//!
//! DDR is a semantics for *deductive* databases (`DB ⊆ C⁺`); all functions
//! panic on negation.

use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_models::{classical, fixpoint, Cost};
use ddb_obs::Governed;

/// The DDR-false atoms: `N = V ∖ atoms(T_DB ↑ ω)`. Polynomial, zero
/// oracle calls.
pub fn false_atoms(db: &Database) -> Interpretation {
    let mut n = Interpretation::full(db.num_atoms());
    n.difference_with(&fixpoint::active_atoms(db));
    n
}

/// Literal inference `DDR(DB) ⊨ ℓ`.
///
/// Fast path (zero oracle calls): negative literal over an integrity-free
/// database — `⊨ ¬x ⟺ x` inactive. Everything else is one coNP
/// entailment `DB ∪ ¬N ⊨ ℓ`.
pub fn infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("ddr.infers_literal");
    assert!(
        !db.has_negation(),
        "DDR is defined for databases without negation"
    );
    let n_set = false_atoms(db);
    if lit.is_negative() && !db.has_integrity_clauses() {
        return Ok(n_set.contains(lit.atom()));
    }
    let units: Vec<Literal> = n_set.iter().map(|a| a.neg()).collect();
    classical::entails(
        db,
        &units,
        &Formula::literal(lit.atom(), lit.is_positive()),
        cost,
    )
}

/// Formula inference `DDR(DB) ⊨ F`: one coNP entailment `DB ∪ ¬N ⊨ F`.
pub fn infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("ddr.infers_formula");
    assert!(
        !db.has_negation(),
        "DDR is defined for databases without negation"
    );
    let n_set = false_atoms(db);
    let units: Vec<Literal> = n_set.iter().map(|a| a.neg()).collect();
    classical::entails(db, &units, f, cost)
}

/// Model existence `DDR(DB) ≠ ∅`. `O(1)` without integrity clauses (the
/// active set is a model satisfying all DDR negations); one SAT call
/// otherwise.
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("ddr.has_model");
    assert!(
        !db.has_negation(),
        "DDR is defined for databases without negation"
    );
    if !db.has_integrity_clauses() {
        return Ok(true);
    }
    let n_set = false_atoms(db);
    let units: Vec<Literal> = n_set.iter().map(|a| a.neg()).collect();
    Ok(classical::some_model_with(db, &units, cost)?.is_some())
}

/// The characteristic model set `DDR(DB)` (enumerative; test/example
/// sized).
pub fn models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("ddr.models");
    assert!(
        !db.has_negation(),
        "DDR is defined for databases without negation"
    );
    let n_set = false_atoms(db);
    Ok(classical::all_models(db, cost)?
        .into_iter()
        .filter(|m| n_set.iter().all(|x| !m.contains(x)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    fn lit(db: &Database, name: &str, positive: bool) -> Literal {
        Literal::with_sign(db.symbols().lookup(name).unwrap(), positive)
    }

    #[test]
    fn weaker_than_gcwa() {
        // DB = {a ∨ b, c ← a, c ← b}: GCWA infers nothing about c?
        // Minimal models {a,c},{b,c} — c true in all, so GCWA ⊨ c.
        // DDR: c active; DDR ⊨ c too (DB ⊨ c classically).
        // Separating example: DB = {a ∨ b, c ← a ∧ b}: GCWA ⊨ ¬c but
        // DDR ⊭ ¬c (c occurs via c∨a∨b... no wait: body a∧b, covering both
        // with a∨b: derived c ∨ b ∨ a → c active).
        let db = parse_program("a | b. c :- a, b.").unwrap();
        let mut cost = Cost::new();
        assert!(!infers_literal(&db, lit(&db, "c", false), &mut cost).unwrap());
        assert!(crate::gcwa::infers_literal(&db, lit(&db, "c", false), &mut cost).unwrap());
    }

    #[test]
    fn inactive_atoms_closed() {
        let db = parse_program("a. c :- b.").unwrap();
        let mut cost = Cost::new();
        assert!(infers_literal(&db, lit(&db, "b", false), &mut cost).unwrap());
        assert!(infers_literal(&db, lit(&db, "c", false), &mut cost).unwrap());
        assert!(!infers_literal(&db, lit(&db, "a", false), &mut cost).unwrap());
        assert_eq!(cost.sat_calls, 0, "tractable path must not use the oracle");
    }

    #[test]
    fn positive_literals_via_entailment() {
        let db = parse_program("a. b | c :- a.").unwrap();
        let mut cost = Cost::new();
        assert!(infers_literal(&db, lit(&db, "a", true), &mut cost).unwrap());
        assert!(!infers_literal(&db, lit(&db, "b", true), &mut cost).unwrap());
    }

    #[test]
    fn example_3_1_integrity_ignored_by_fixpoint() {
        // DDR(DB) ⊭ ¬c although c is unsatisfiable given the integrity
        // clause (Example 3.1).
        let db = parse_program("a | b. :- a, b. c :- a, b.").unwrap();
        let mut cost = Cost::new();
        // With integrity clauses, the coNP path decides: models of DB∪¬N
        // never contain c... wait: c is ACTIVE (occurs in T↑ω), so ¬c is
        // not added; but every model of DB satisfies ¬c anyway? No: the
        // integrity clause kills a∧b, so c is never *forced*, but a model
        // may still set c true freely! M = {a, c} ⊨ DB. Hence DDR ⊭ ¬c.
        assert!(!infers_literal(&db, lit(&db, "c", false), &mut cost).unwrap());
    }

    #[test]
    fn formula_inference_matches_model_filter() {
        let db = parse_program("a | b. d :- c. :- b, a.").unwrap();
        let mut cost = Cost::new();
        let dm = models(&db, &mut cost).unwrap();
        assert!(!dm.is_empty());
        for text in ["!c", "!d", "a | b", "!(a & b)", "c -> d"] {
            let f = parse_formula(text, db.symbols()).unwrap();
            let expected = dm.iter().all(|m| f.eval(m));
            assert_eq!(
                infers_formula(&db, &f, &mut cost).unwrap(),
                expected,
                "{text}"
            );
        }
    }

    #[test]
    fn existence() {
        let mut cost = Cost::new();
        assert!(has_model(&parse_program("a | b.").unwrap(), &mut cost).unwrap());
        assert_eq!(cost.sat_calls, 0);
        assert!(has_model(&parse_program("a | b. :- a, b.").unwrap(), &mut cost).unwrap());
        assert!(!has_model(&parse_program("a. :- a.").unwrap(), &mut cost).unwrap());
    }

    #[test]
    #[should_panic(expected = "without negation")]
    fn rejects_negation() {
        let db = parse_program("a :- not b.").unwrap();
        let mut cost = Cost::new();
        let _ = infers_formula(&db, &Formula::True, &mut cost).unwrap();
    }

    #[test]
    fn ddr_models_superset_of_gcwa_models() {
        // WGCWA is weaker: N_DDR ⊆ N_GCWA, so DDR(DB) ⊇ GCWA(DB).
        let db = parse_program("a | b. c :- a, b. e :- d.").unwrap();
        let mut cost = Cost::new();
        let ddr = models(&db, &mut cost).unwrap();
        let gcwa = crate::gcwa::models(&db, &mut cost).unwrap();
        for m in &gcwa {
            assert!(ddr.contains(m));
        }
    }
}
