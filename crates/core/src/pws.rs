//! The Possible Worlds Semantics (PWS), Chan \[5\] — equivalent to the
//! Possible Models Semantics (PMS) of Sakama \[24\].
//!
//! A *split* of a positive disjunctive database chooses a non-empty subset
//! of each rule head, yielding a definite program; the **possible models**
//! are the least models of the splits that also satisfy the integrity
//! clauses. `PWS(DB) ⊨ F` iff `F` holds in every possible model.
//!
//! Two characterizations are implemented:
//!
//! * An **NP witness encoding** ([`possible_model_cnf`]): `M` is a possible
//!   model iff `M ⊨ DB` and every `x ∈ M` is *acyclically supported* —
//!   some rule has `x` in its head, its body inside `M`, and all body atoms
//!   at strictly smaller derivation levels. Levels are binary-encoded
//!   (`⌈log₂ n⌉` auxiliary bits per atom), so possible-model existence and
//!   formula inference are each **one SAT call** — the right shape for the
//!   coNP-complete table cells. Correctness of the characterization: for a
//!   definite program `P_M = {x ← body : body ⊆ M, x ∈ head ∩ M}` we have
//!   `LM(P_M) ⊆ M` always, and `M ⊆ LM(P_M)` iff every atom of `M` has a
//!   well-founded support — precisely the level-mapping condition.
//! * A **reference split enumerator** ([`possible_models_by_splits`]),
//!   exponential in the number of disjunctive rules, used by tests to
//!   validate the encoding.
//!
//! Tractable cell (Chan): on integrity-free databases, negative-literal
//! inference is polynomial with zero oracle calls — the union of all
//! possible models is exactly the active-atom closure (the full split's
//! least model), so `PWS(DB) ⊨ ¬x ⟺ x ∉ active(DB)`. This coincides with
//! DDR on literals, though the two differ on formulas.
//!
//! PWS is a semantics for databases without negation; functions panic
//! otherwise.

use ddb_logic::cnf::{Cnf, CnfBuilder};
use ddb_logic::{Atom, Database, Formula, Interpretation, Literal};
use ddb_models::{fixpoint, Cost};
use ddb_obs::Governed;
use ddb_sat::{enumerate_models, Solver};

/// Builds the possible-model CNF: satisfying assignments, projected onto
/// the database atoms, are exactly the possible models of `db`.
pub fn possible_model_cnf(db: &Database) -> Cnf {
    assert!(
        !db.has_negation(),
        "PWS is defined for databases without negation"
    );
    let n = db.num_atoms();
    let mut b = CnfBuilder::new(n);
    b.add_database(db);
    if n == 0 {
        return b.finish();
    }
    // Level bits (LSB first) per atom.
    let bits = usize::max(1, n.next_power_of_two().trailing_zeros() as usize);
    let levels: Vec<Vec<Atom>> = (0..n)
        .map(|_| (0..bits).map(|_| b.fresh_var()).collect())
        .collect();
    // lt(a, x): binary comparison ℓ_a < ℓ_x.
    let lt = |a: usize, x: usize| -> Formula {
        let mut cases = Vec::with_capacity(bits);
        for i in 0..bits {
            let mut conj = vec![
                Formula::atom(levels[a][i]).negated(),
                Formula::atom(levels[x][i]),
            ];
            for (&la, &lx) in levels[a][i + 1..].iter().zip(&levels[x][i + 1..]) {
                conj.push(Formula::atom(la).iff(Formula::atom(lx)));
            }
            cases.push(Formula::And(conj));
        }
        Formula::Or(cases)
    };
    // Support constraints: x → ⋁_{rules r with x ∈ head} ⋀_{b ∈ body(r)}
    // (b ∧ lt(b, x)).
    for xi in 0..n {
        let x = Atom::new(xi as u32);
        let mut supports = Vec::new();
        for rule in db.rules() {
            if !rule.head().contains(&x) {
                continue;
            }
            let conj: Vec<Formula> = rule
                .body_pos()
                .iter()
                .flat_map(|&ba| [Formula::atom(ba), lt(ba.index(), xi)])
                .collect();
            supports.push(Formula::And(conj));
        }
        let constraint = Formula::atom(x).implies(Formula::Or(supports));
        b.assert_formula(&constraint);
    }
    b.finish()
}

/// Whether `m` is a possible model of `db` (polynomial check: model of the
/// clauses plus least-model equality for the induced definite program).
pub fn is_possible_model(db: &Database, m: &Interpretation) -> bool {
    assert!(
        !db.has_negation(),
        "PWS is defined for databases without negation"
    );
    if !db.satisfied_by(m) {
        return false;
    }
    // Least model of P_M = {head∩M ← body : body ⊆ M} must equal M.
    let mut lm = Interpretation::empty(db.num_atoms());
    loop {
        let mut changed = false;
        for rule in db.rules() {
            if rule.is_integrity() {
                continue;
            }
            if rule.body_pos().iter().all(|&b| lm.contains(b))
                && rule.body_pos().iter().all(|&b| m.contains(b))
            {
                for &h in rule.head() {
                    if m.contains(h) && !lm.contains(h) {
                        lm.insert(h);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    lm == *m
}

/// Reference implementation: all possible models by explicit split
/// enumeration (exponential in the number of disjunctive rules —
/// test/example sized).
pub fn possible_models_by_splits(db: &Database) -> Vec<Interpretation> {
    assert!(
        !db.has_negation(),
        "PWS is defined for databases without negation"
    );
    let n = db.num_atoms();
    let disjunctive: Vec<usize> = (0..db.rules().len())
        .filter(|&i| db.rules()[i].head().len() > 1)
        .collect();
    let split_count: usize = disjunctive
        .iter()
        .map(|&i| (1usize << db.rules()[i].head().len()) - 1)
        .product();
    assert!(split_count <= 1 << 16, "split enumeration is test-sized");
    let mut out: Vec<Interpretation> = Vec::new();
    let mut choice = vec![1usize; disjunctive.len()]; // nonempty subset masks
    loop {
        // Build the definite program's least model.
        let mut lm = Interpretation::empty(n);
        loop {
            let mut changed = false;
            for (ri, rule) in db.rules().iter().enumerate() {
                if rule.is_integrity() || !rule.body_pos().iter().all(|&b| lm.contains(b)) {
                    continue;
                }
                let selected: Vec<Atom> = match disjunctive.iter().position(|&d| d == ri) {
                    Some(k) => rule
                        .head()
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| choice[k] >> j & 1 == 1)
                        .map(|(_, &a)| a)
                        .collect(),
                    None => rule.head().to_vec(),
                };
                for h in selected {
                    if !lm.contains(h) {
                        lm.insert(h);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Keep it if the integrity clauses hold.
        if db
            .rules()
            .iter()
            .filter(|r| r.is_integrity())
            .all(|r| r.satisfied_by(&lm))
            && !out.contains(&lm)
        {
            out.push(lm);
        }
        // Advance the split odometer.
        let mut k = 0;
        loop {
            if k == choice.len() {
                out.sort();
                return out;
            }
            choice[k] += 1;
            let limit = 1usize << db.rules()[disjunctive[k]].head().len();
            if choice[k] < limit {
                break;
            }
            choice[k] = 1;
            k += 1;
        }
    }
}

/// All possible models via the SAT encoding (projected enumeration).
pub fn models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("pws.models");
    let cnf = possible_model_cnf(db);
    let mut out = Vec::new();
    let mut calls = 0u64;
    let result = enumerate_models(&cnf, db.num_atoms(), |m| {
        calls += 1;
        out.push(m.clone());
        true
    });
    cost.sat_calls += calls + 1;
    result?;
    out.sort();
    Ok(out)
}

/// Literal inference `PWS(DB) ⊨ ℓ`. Fast path (zero oracle calls):
/// negative literal, no integrity clauses — `⊨ ¬x ⟺ x ∉ active(DB)`.
pub fn infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("pws.infers_literal");
    assert!(
        !db.has_negation(),
        "PWS is defined for databases without negation"
    );
    if lit.is_negative() && !db.has_integrity_clauses() {
        return Ok(!fixpoint::active_atoms(db).contains(lit.atom()));
    }
    infers_formula(db, &Formula::literal(lit.atom(), lit.is_positive()), cost)
}

/// Formula inference `PWS(DB) ⊨ F`: one SAT call on the possible-model
/// encoding conjoined with `¬F`.
pub fn infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("pws.infers_formula");
    let cnf = possible_model_cnf(db);
    let mut b = CnfBuilder::new(cnf.num_vars);
    for c in &cnf.clauses {
        b.add_clause(c.clone());
    }
    b.assert_formula(&f.clone().negated());
    let mut solver = Solver::from_cnf(&b.finish());
    let result = solver.solve();
    cost.absorb(&solver);
    Ok(!result?.is_sat())
}

/// Model existence `PWS(DB) ≠ ∅`. `O(1)` without integrity clauses (the
/// full split's least model is a possible model); one SAT call otherwise.
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("pws.has_model");
    assert!(
        !db.has_negation(),
        "PWS is defined for databases without negation"
    );
    if !db.has_integrity_clauses() {
        return Ok(true);
    }
    let cnf = possible_model_cnf(db);
    let mut solver = Solver::from_cnf(&cnf);
    let result = solver.solve();
    cost.absorb(&solver);
    Ok(result?.is_sat())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    fn interp(db: &Database, names: &[&str]) -> Interpretation {
        Interpretation::from_atoms(
            db.num_atoms(),
            names.iter().map(|n| db.symbols().lookup(n).unwrap()),
        )
    }

    #[test]
    fn possible_models_of_plain_disjunction() {
        // PM({a ∨ b}) = {{a}, {b}, {a,b}} — unlike MM, the non-minimal
        // {a,b} is possible (split S = {a,b}).
        let db = parse_program("a | b.").unwrap();
        let pm = possible_models_by_splits(&db);
        assert_eq!(
            pm,
            vec![
                interp(&db, &["a"]),
                interp(&db, &["b"]),
                interp(&db, &["a", "b"])
            ]
        );
        let mut cost = Cost::new();
        assert_eq!(models(&db, &mut cost).unwrap(), pm);
    }

    #[test]
    fn unsupported_atoms_excluded() {
        // V = {a, b, c}, DB = {a ∨ b}: c is never in a possible model
        // (while {a, c} IS a classical model).
        let db = parse_program("a | b. c :- z.").unwrap();
        let mut cost = Cost::new();
        let pm = models(&db, &mut cost).unwrap();
        let c = db.symbols().lookup("c").unwrap();
        let z = db.symbols().lookup("z").unwrap();
        for m in &pm {
            assert!(!m.contains(c));
            assert!(!m.contains(z));
        }
        assert!(infers_literal(&db, c.neg(), &mut cost).unwrap());
        assert!(infers_literal(&db, z.neg(), &mut cost).unwrap());
    }

    #[test]
    fn encoding_matches_splits_on_examples() {
        for src in [
            "a | b. c :- a.",
            "a | b. b | c. d :- b.",
            "a. b | c :- a. d :- b, c.",
            "a | b | c. x :- a, b. y :- x, c.",
            "a | b. :- a, b.",
            "a :- a.",
        ] {
            let db = parse_program(src).unwrap();
            let mut cost = Cost::new();
            assert_eq!(
                models(&db, &mut cost).unwrap(),
                possible_models_by_splits(&db),
                "program: {src}"
            );
        }
    }

    #[test]
    fn is_possible_model_check() {
        let db = parse_program("a | b. c :- a.").unwrap();
        assert!(is_possible_model(&db, &interp(&db, &["a", "c"])));
        assert!(is_possible_model(&db, &interp(&db, &["b"])));
        // {a} is NOT a model (c :- a unfired... wait: {a} ⊭ c :- a).
        assert!(!is_possible_model(&db, &interp(&db, &["a"])));
        // {a, b, c} is possible (split {a,b}).
        assert!(is_possible_model(&db, &interp(&db, &["a", "b", "c"])));
        // {b, c} is a classical model but c is unsupported.
        assert!(!is_possible_model(&db, &interp(&db, &["b", "c"])));
    }

    #[test]
    fn self_supporting_loops_rejected() {
        // a ← a: {a} is a classical model but not possible.
        let db = parse_program("a :- a.").unwrap();
        assert!(!is_possible_model(&db, &interp(&db, &["a"])));
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            vec![Interpretation::empty(1)]
        );
    }

    #[test]
    fn formula_inference_vs_enumeration() {
        let db = parse_program("a | b. c :- a. :- b, c.").unwrap();
        let mut cost = Cost::new();
        let pm = models(&db, &mut cost).unwrap();
        for text in ["a | b", "!(a & b) | c", "c -> a", "!c", "b | c"] {
            let f = parse_formula(text, db.symbols()).unwrap();
            let expected = pm.iter().all(|m| f.eval(m));
            assert_eq!(
                infers_formula(&db, &f, &mut cost).unwrap(),
                expected,
                "{text}"
            );
        }
    }

    #[test]
    fn pws_differs_from_ddr_on_formulas() {
        // DB = {a ∨ b, z ← y}: DDR(DB) contains every model of DB with
        // ¬y, ¬z — including {} ∪ ... wait a|b forces one. DDR contains
        // {a,b}; so does PM. Separating: c free atom... DDR models include
        // {a, c}? c inactive → ¬c added → no. Use supported-but-nonminimal
        // distinction: DB = {a ∨ b, b :- a}: models(DB∧N̄): {b}, {a,b}.
        // PM: splits: {a}: LM {a,b}; {b}: {b}; {a,b}: {a,b}. PM = {{b},{a,b}}.
        // Same! Classic separating example: DB = {a∨b, a∨c}:
        // M(DB) ∩ N̄: {a},{a,b},{a,c},{b,c},{a,b,c} — PM misses none?
        // PM: {a},{a,c},{a,b},{b,c},{a,b,c} — same again. Known gap:
        // DDR(DB) ⊨ F vs PWS for F = a ∨ (b ∧ c) on {a ∨ b, a ∨ c}: equal.
        // Use integrity clauses: DB = {a∨b, :- a, b}: DDR: both active,
        // models {a},{b}; PM: split {a,b} gives LM {a,b} — violates
        // integrity → PM = {{a},{b}} — same. Simplest true gap:
        // DB = {a | b. c :- a, b.}: DDR models: c active (Example-3.1
        // style) → {a},{b},{a,b,c},{a,c}?? c only with a,b... M(DB):
        // any M ⊇ {a}∪... with (a∧b → c). N = ∅. DDR models include
        // {a, c} (c spuriously true). PM: c ∈ LM only if a,b ∈ LM →
        // {a,c} NOT possible. So PWS ⊨ c → (a ∧ b) but DDR does not.
        let db = parse_program("a | b. c :- a, b.").unwrap();
        let mut cost = Cost::new();
        let f = parse_formula("c -> (a & b)", db.symbols()).unwrap();
        assert!(infers_formula(&db, &f, &mut cost).unwrap());
        assert!(!crate::ddr::infers_formula(&db, &f, &mut cost).unwrap());
    }

    #[test]
    fn existence() {
        let mut cost = Cost::new();
        assert!(has_model(&parse_program("a | b.").unwrap(), &mut cost).unwrap());
        assert_eq!(cost.sat_calls, 0);
        assert!(has_model(&parse_program("a | b. :- a, b.").unwrap(), &mut cost).unwrap());
        assert!(!has_model(&parse_program("a. :- a.").unwrap(), &mut cost).unwrap());
    }

    #[test]
    fn literal_inference_positive() {
        let db = parse_program("a. b | c :- a.").unwrap();
        let mut cost = Cost::new();
        let a = db.symbols().lookup("a").unwrap();
        let b = db.symbols().lookup("b").unwrap();
        assert!(infers_literal(&db, a.pos(), &mut cost).unwrap());
        assert!(!infers_literal(&db, b.pos(), &mut cost).unwrap());
        assert!(!infers_literal(&db, b.neg(), &mut cost).unwrap());
    }
}
