//! The Well-Founded Semantics (WFS) of van Gelder, Ross & Schlipf \[29\]
//! for *normal logic programs* (non-disjunctive databases) — the semantics
//! PDSM extends to the disjunctive case.
//!
//! Computed by van Gelder's **alternating fixpoint**: with
//! `Γ(J) = LM(DB^J)` (least model of the GL-reduct, a polynomial
//! closure), the well-founded true atoms are `lfp(Γ²)` and the false
//! atoms are the complement of `Γ(lfp(Γ²))`; everything in between is
//! undefined. The whole computation is polynomial — in sharp contrast to
//! every semantics in the paper's tables, which is the point of the
//! comparison: dropping disjunction collapses the complexity.
//!
//! Structural facts pinned by the tests:
//!
//! * the WFS model is a partial stable model, and it is the
//!   *knowledge-least* one (its true and false sets are contained in
//!   those of every partial stable model);
//! * on stratified programs WFS is total and coincides with the perfect
//!   model;
//! * atoms true (false) in WFS are true (false) in every stable model.

use crate::reduct::gl_reduct;
use ddb_logic::{Database, Interpretation, PartialInterpretation};
use ddb_models::fixpoint::active_atoms;

/// Checks that `db` is a normal logic program: every rule has exactly one
/// head atom (no disjunction, no integrity clauses).
pub fn is_normal_program(db: &Database) -> bool {
    db.rules().iter().all(|r| r.head().len() == 1)
}

/// `Γ(J) = LM(DB^J)`: least model of the Gelfond–Lifschitz reduct.
/// For singleton-head positive programs the active-atom closure *is* the
/// least model.
pub fn gamma(db: &Database, j: &Interpretation) -> Interpretation {
    active_atoms(&gl_reduct(db, j))
}

/// Computes the well-founded model by the alternating fixpoint.
///
/// ```
/// use ddb_logic::parse::parse_program;
/// use ddb_logic::TruthValue;
/// let db = parse_program("a. b :- not a. c :- not b.").unwrap();
/// let w = ddb_core::wfs::well_founded_model(&db);
/// let c = db.symbols().lookup("c").unwrap();
/// assert_eq!(w.value(c), TruthValue::True);
/// ```
///
/// # Panics
/// Panics if `db` is not a normal program (WFS is defined for normal
/// logic programs; use PDSM for the disjunctive generalization).
pub fn well_founded_model(db: &Database) -> PartialInterpretation {
    assert!(
        is_normal_program(db),
        "WFS is defined for normal (singleton-head) programs"
    );
    let n = db.num_atoms();
    let mut t = Interpretation::empty(n);
    loop {
        let overestimate = gamma(db, &t);
        let t2 = gamma(db, &overestimate);
        if t2 == t {
            let mut false_set = Interpretation::full(n);
            false_set.difference_with(&overestimate);
            return PartialInterpretation::new(t, false_set);
        }
        t = t2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;
    use ddb_logic::TruthValue;
    use ddb_models::Cost;

    fn value(db: &Database, w: &PartialInterpretation, name: &str) -> TruthValue {
        w.value(db.symbols().lookup(name).unwrap())
    }

    #[test]
    fn stratified_program_is_total() {
        let db = parse_program("a. b :- not a. c :- not b.").unwrap();
        let w = well_founded_model(&db);
        assert!(w.is_total());
        assert_eq!(value(&db, &w, "a"), TruthValue::True);
        assert_eq!(value(&db, &w, "b"), TruthValue::False);
        assert_eq!(value(&db, &w, "c"), TruthValue::True);
    }

    #[test]
    fn even_loop_undefined() {
        let db = parse_program("a :- not b. b :- not a.").unwrap();
        let w = well_founded_model(&db);
        assert_eq!(value(&db, &w, "a"), TruthValue::Undefined);
        assert_eq!(value(&db, &w, "b"), TruthValue::Undefined);
    }

    #[test]
    fn odd_loop_undefined_but_facts_decided() {
        let db = parse_program("p :- not p. q. r :- not q.").unwrap();
        let w = well_founded_model(&db);
        assert_eq!(value(&db, &w, "p"), TruthValue::Undefined);
        assert_eq!(value(&db, &w, "q"), TruthValue::True);
        assert_eq!(value(&db, &w, "r"), TruthValue::False);
    }

    #[test]
    fn positive_loops_are_unfounded() {
        // a ← b, b ← a: nothing supports the loop — both false.
        let db = parse_program("a :- b. b :- a.").unwrap();
        let w = well_founded_model(&db);
        assert_eq!(value(&db, &w, "a"), TruthValue::False);
        assert_eq!(value(&db, &w, "b"), TruthValue::False);
    }

    #[test]
    fn wfs_is_a_partial_stable_model() {
        for src in [
            "a :- not b. b :- not a.",
            "p :- not p. q.",
            "a. b :- not a. c :- not b. d :- d.",
            "x :- not y. y :- not z. z :- not x.",
        ] {
            let db = parse_program(src).unwrap();
            let w = well_founded_model(&db);
            let mut cost = Cost::new();
            assert!(
                crate::pdsm::is_partial_stable(&db, &w, &mut cost).unwrap(),
                "{src}"
            );
        }
    }

    #[test]
    fn wfs_is_knowledge_least_partial_stable() {
        for src in [
            "a :- not b. b :- not a.",
            "a :- not b. b :- not a. c :- a. c :- b.",
            "p :- not q. q :- not p. r :- not r.",
        ] {
            let db = parse_program(src).unwrap();
            let w = well_founded_model(&db);
            let mut cost = Cost::new();
            for p in crate::pdsm::models(&db, &mut cost).unwrap() {
                assert!(w.true_set().is_subset(p.true_set()), "{src}");
                assert!(w.false_set().is_subset(p.false_set()), "{src}");
            }
        }
    }

    #[test]
    fn wfs_sound_for_stable_models() {
        for src in ["a :- not b. b :- not a. c.", "p :- not q. r :- p."] {
            let db = parse_program(src).unwrap();
            let w = well_founded_model(&db);
            let mut cost = Cost::new();
            for m in crate::dsm::models(&db, &mut cost).unwrap() {
                for a in w.true_set().iter() {
                    assert!(m.contains(a), "{src}");
                }
                for a in w.false_set().iter() {
                    assert!(!m.contains(a), "{src}");
                }
            }
        }
    }

    #[test]
    fn wfs_total_equals_perfect_on_stratified() {
        let db = parse_program("a. b :- not a. c :- not b. d :- c, not e.").unwrap();
        assert!(db.stratification().is_some());
        let w = well_founded_model(&db);
        assert!(w.is_total());
        let mut cost = Cost::new();
        let perfect = crate::perf::models(&db, &mut cost).unwrap();
        assert_eq!(perfect, vec![w.to_total()]);
    }

    #[test]
    #[should_panic(expected = "singleton-head")]
    fn rejects_disjunctive_programs() {
        let db = parse_program("a | b.").unwrap();
        let _ = well_founded_model(&db);
    }

    #[test]
    fn polynomial_scaling_smoke() {
        // A 1000-atom negation chain computes quickly even in debug
        // builds under parallel test load (the alternating fixpoint is
        // O(n) iterations of a linear closure here).
        let mut src = String::from("x0.");
        for i in 1..1000 {
            src.push_str(&format!(" x{i} :- not x{}.", i - 1));
        }
        let db = parse_program(&src).unwrap();
        let start = std::time::Instant::now();
        let w = well_founded_model(&db);
        assert!(w.is_total());
        assert!(start.elapsed().as_secs_f64() < 10.0);
    }
}
