//! `T1-planning` — the static query planner against the solve it
//! predicts, on the sliceable-towers corpus family.
//!
//! Two questions, answered per semantics:
//!
//! 1. **Overhead** — building the full plan tree (`SemanticsConfig::plan`:
//!    classification, slicing, peeling, the decision kernel recursion)
//!    must be a vanishing fraction of actually solving the cell. The
//!    hard assertion compares against the *generic* route (the cost the
//!    planner's decisions avoid) and requires `plan < 1%` of it; the
//!    plan-vs-routed-solve ratio is recorded as a metric only, since the
//!    routed solve on a sliced instance is itself nearly free.
//! 2. **Prediction quality** — before any timing, an untimed audit
//!    asserts the planned route is the route dispatch takes and the
//!    observed oracle calls stay under the static bound (the
//!    `ddb explain --execute` contract), and the observed/bound ratio is
//!    recorded in the `DDB_BENCH_JSON` summary as
//!    `T1-planning/<sem>_observed_calls` over `<sem>_predicted_bound`.
//!
//! Wall-clock bounds are hostile to CI hardware variance, so the 1%
//! gate uses medians over a fixed iteration count and the generic
//! baseline is the slowest cell of the sweep.

use ddb_analysis::PlanQuery;
use ddb_bench::microbench::{
    black_box, criterion_group, criterion_main, record_metric, BenchmarkId, Criterion,
};
use ddb_core::profile::{profile_cell, Problem};
use ddb_core::{RoutingMode, SemanticsConfig, SemanticsId};
use ddb_logic::{Atom, Database, Formula};
use ddb_models::Cost;
use ddb_workloads::structured;
use std::time::{Duration, Instant};

fn fast() -> bool {
    std::env::var_os("DDB_BENCH_FAST").is_some_and(|v| !v.is_empty() && v != "0")
}

fn config() -> Criterion {
    let (measure, warmup) = if fast() { (200, 50) } else { (600, 150) };
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(measure))
        .warm_up_time(Duration::from_millis(warmup))
}

/// The `T1-slicing` corpus instance: independent disjunctive towers,
/// queried at tower 0's first-stage closure atom `c₁`.
fn workload() -> Database {
    structured::sliceable_towers(if fast() { 2 } else { 3 }, 3)
}

fn query_atom() -> Atom {
    Atom::new(4)
}

/// Median wall time of `iters` runs of `f`.
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_planning(c: &mut Criterion) {
    let db = workload();
    let lit = query_atom().pos();
    let f = Formula::Atom(lit.atom());
    let q = PlanQuery::Literal(lit.atom());
    let ids = [SemanticsId::Ccwa, SemanticsId::Dsm, SemanticsId::Pdsm];
    let iters = if fast() { 20 } else { 50 };

    let mut g = c.benchmark_group("T1-planning");
    let mut plan_ns_worst = 0u64;
    let mut generic_ns_worst = 0u64;
    for id in ids {
        let cfg = SemanticsConfig::new(id);
        let name = cfg.id.name();

        // Untimed audit: the `ddb explain --execute` contract on every
        // bench run — predicted route taken, observed calls under bound.
        let plan = cfg.plan(&db, &q).expect("planable");
        let cell = profile_cell(&cfg, &db, Problem::Literal, lit, &f, None);
        assert!(cell.unsupported.is_none(), "{name}: cell must run");
        assert_eq!(
            cell.route,
            Some(plan.route.label()),
            "{name}: dispatch must take the planned route"
        );
        assert!(
            cell.cost.sat_calls <= plan.oracle_bound,
            "{name}: observed {} oracle calls exceed the static bound {}",
            cell.cost.sat_calls,
            plan.oracle_bound
        );
        record_metric(
            "T1-planning",
            &format!("{name}_predicted_bound"),
            plan.oracle_bound as f64,
        );
        record_metric(
            "T1-planning",
            &format!("{name}_observed_calls"),
            cell.cost.sat_calls as f64,
        );
        eprintln!(
            "T1-planning {name}: route={} observed/bound = {}/{} oracle calls",
            plan.route.label(),
            cell.cost.sat_calls,
            plan.oracle_bound
        );

        // The overhead gate, on medians outside the timed loops.
        let plan_ns = median_ns(iters, || {
            black_box(cfg.plan(&db, &q).unwrap());
        });
        let generic = cfg.with_routing(RoutingMode::Generic);
        let generic_ns = median_ns(iters, || {
            let mut cost = Cost::new();
            black_box(generic.infers_literal(&db, lit, &mut cost).unwrap());
        });
        let routed_ns = median_ns(iters, || {
            let mut cost = Cost::new();
            let cfg = SemanticsConfig::new(id);
            black_box(cfg.infers_literal(&db, lit, &mut cost).unwrap());
        });
        plan_ns_worst = plan_ns_worst.max(plan_ns);
        generic_ns_worst = generic_ns_worst.max(generic_ns);
        record_metric("T1-planning", &format!("{name}_plan_ns"), plan_ns as f64);
        record_metric(
            "T1-planning",
            &format!("{name}_generic_solve_ns"),
            generic_ns as f64,
        );
        record_metric(
            "T1-planning",
            &format!("{name}_routed_solve_ns"),
            routed_ns as f64,
        );

        g.bench_with_input(BenchmarkId::new("plan", name), &name, |b, _| {
            let cfg = SemanticsConfig::new(id);
            b.iter(|| cfg.plan(&db, &q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("solve", name), &name, |b, _| {
            let cfg = SemanticsConfig::new(id);
            b.iter(|| {
                let mut cost = Cost::new();
                cfg.infers_literal(&db, lit, &mut cost).unwrap()
            })
        });
    }
    g.finish();

    // Even the slowest plan must be under 1% of the slowest generic
    // solve it lets dispatch avoid.
    let pct = 100.0 * plan_ns_worst as f64 / generic_ns_worst.max(1) as f64;
    record_metric("T1-planning", "plan_vs_generic_pct", pct);
    eprintln!(
        "T1-planning overhead: plan {plan_ns_worst}ns vs generic solve {generic_ns_worst}ns \
         ({pct:.3}%)"
    );
    assert!(
        pct < 1.0,
        "planner overhead must be \u{226a} 1% of the generic solve, got {pct:.3}%"
    );
}

criterion_group!(
    name = planning;
    config = config();
    targets = bench_planning
);
criterion_main!(planning);
