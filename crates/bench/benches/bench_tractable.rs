//! Table 1's tractable cells: DDR and PWS literal inference on positive,
//! integrity-free databases — polynomial, zero oracle calls (Chan).
//!
//! Experiments: `T1-DDR-lit`, `T1-PWS-lit`, `T1-DDR-form`, `T1-PWS-form`.

use ddb_bench::families;
use ddb_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddb_core::{RoutingMode, SemanticsConfig, SemanticsId};
use ddb_logic::Atom;
use ddb_models::Cost;
use ddb_workloads::queries;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_ddr_literal(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1-DDR-lit (in P, 0 oracle calls)");
    for n in [1_000usize, 4_000, 16_000] {
        let db = families::tractable_chain(n);
        let lit = Atom::new((n - 1) as u32).neg();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let ans = ddb_core::ddr::infers_literal(&db, lit, &mut cost);
                assert_eq!(cost.sat_calls, 0);
                ans
            })
        });
    }
    g.finish();
}

fn bench_pws_literal(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1-PWS-lit (in P, 0 oracle calls)");
    for n in [1_000usize, 4_000, 16_000] {
        let db = families::tractable_chain(n);
        let lit = Atom::new((n / 2) as u32).neg();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::pws::infers_literal(&db, lit, &mut cost)
            })
        });
    }
    g.finish();
}

fn bench_ddr_formula(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1-DDR-form (coNP: one SAT refutation)");
    for n in [64usize, 128, 256] {
        let db = families::table1_random(n, 7);
        let f = queries::random_formula(n, 8, 11);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::ddr::infers_formula(&db, &f, &mut cost)
            })
        });
    }
    g.finish();
}

fn bench_pws_formula(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1-PWS-form (coNP: possible-model SAT)");
    for n in [64usize, 128, 256] {
        let db = families::table1_random(n, 7);
        let f = queries::random_formula(n, 8, 11);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::pws::infers_formula(&db, &f, &mut cost)
            })
        });
    }
    g.finish();
}

fn bench_horn_routing(c: &mut Criterion) {
    // The same GCWA literal query on a Horn chain, dispatched with the
    // analysis-driven fast path (0 oracle calls) and with routing forced
    // to the generic Πᵖ₂ procedure.
    let mut g = c.benchmark_group("T1-Horn-routing (GCWA lit: routed vs generic)");
    for n in [200usize, 800] {
        let db = families::tractable_chain(n);
        let lit = Atom::new((n - 1) as u32).neg();
        let auto = SemanticsConfig::new(SemanticsId::Gcwa);
        let generic = SemanticsConfig::new(SemanticsId::Gcwa).with_routing(RoutingMode::Generic);
        let mut ca = Cost::new();
        let mut cg = Cost::new();
        assert_eq!(
            auto.infers_literal(&db, lit, &mut ca).unwrap(),
            generic.infers_literal(&db, lit, &mut cg).unwrap()
        );
        assert_eq!(ca.sat_calls, 0, "routed Horn path must be oracle-free");
        assert!(cg.sat_calls > 0, "generic path must pay oracle calls");
        g.bench_with_input(BenchmarkId::new("routed", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                auto.infers_literal(&db, lit, &mut cost).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("generic", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                generic.infers_literal(&db, lit, &mut cost).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ddr_literal, bench_pws_literal, bench_ddr_formula,
        bench_pws_formula, bench_horn_routing
}
criterion_main!(benches);
