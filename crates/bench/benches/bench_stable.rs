//! The stable-model rows (DSM, PDSM): enumeration, inference, and the
//! candidate-strategy ablation from DESIGN.md (filter-all-models vs
//! filter-minimal-models).
//!
//! Experiments: `T2-DSM-lit/form`, `T2-PDSM-lit/form`, enumeration stress
//! on even-loop batteries (`2^k` stable models).

use ddb_bench::families;
use ddb_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddb_core::reduct::gl_reduct;
use ddb_logic::cnf::database_to_cnf;
use ddb_logic::{Database, Interpretation};
use ddb_models::{minimal, Cost};
use ddb_sat::Solver;
use ddb_workloads::queries;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_dsm_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("DSM enumeration (even loops: 2^k stable models)");
    for k in [2usize, 4, 6] {
        let db = families::even_loops(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let models = ddb_core::dsm::models(&db, &mut cost).unwrap();
                assert_eq!(models.len(), 1 << k);
                models.len()
            })
        });
    }
    g.finish();
}

fn bench_dsm_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("T2-DSM-form (normal DBs)");
    for n in [8usize, 12, 16] {
        let db = families::normal_random(n, 23);
        let f = queries::random_formula(n, 6, 9);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::dsm::infers_formula(&db, &f, &mut cost)
            })
        });
    }
    g.finish();
}

fn bench_pdsm_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("PDSM enumeration (even loops: 3^k partial stable models)");
    for k in [2usize, 3, 4] {
        let db = families::even_loops(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let models = ddb_core::pdsm::models(&db, &mut cost).unwrap();
                // k independent loops, each {a}, {b} or undefined.
                assert_eq!(models.len(), 3usize.pow(k as u32));
                models.len()
            })
        });
    }
    g.finish();
}

/// Ablation: candidate strategy for stable-model search — minimize every
/// SAT model first (the implementation) vs testing raw SAT models.
fn bench_candidate_strategy(c: &mut Criterion) {
    fn stable_exists_raw_candidates(db: &Database, cost: &mut Cost) -> bool {
        let n = db.num_atoms();
        let mut candidates = Solver::from_cnf(&database_to_cnf(db));
        candidates.ensure_vars(n);
        loop {
            if !candidates.solve().unwrap().is_sat() {
                return false;
            }
            let full = candidates.model();
            let mut m = Interpretation::empty(n);
            for a in full.iter().filter(|a| a.index() < n) {
                m.insert(a);
            }
            let reduct = gl_reduct(db, &m);
            if minimal::is_minimal_model(&reduct, &m, cost).unwrap() {
                return true;
            }
            // Block this exact model only.
            let blocking: Vec<ddb_logic::Literal> = (0..n)
                .map(|i| {
                    let a = ddb_logic::Atom::new(i as u32);
                    ddb_logic::Literal::with_sign(a, !m.contains(a))
                })
                .collect();
            if !candidates.add_clause(&blocking) {
                return false;
            }
        }
    }

    let mut g = c.benchmark_group("DSM ablation: minimize-first vs raw candidates");
    for n in [2u32, 3, 4] {
        let db = families::dsm_exist_hard(n);
        g.bench_with_input(BenchmarkId::new("minimize-first", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::dsm::has_model(&db, &mut cost)
            })
        });
        g.bench_with_input(BenchmarkId::new("raw-candidates", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                stable_exists_raw_candidates(&db, &mut cost)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dsm_enumeration, bench_dsm_inference,
              bench_pdsm_enumeration, bench_candidate_strategy
}
criterion_main!(benches);
