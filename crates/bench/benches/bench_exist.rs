//! The *∃ model* column of both tables, across its four complexity tiers:
//!
//! * `O(1)` — positive databases (every semantics) and stratified ICWA;
//! * NP-complete — EGCWA & friends with integrity clauses
//!   (phase-transition 3-CNF family);
//! * Σᵖ₂-complete — DSM existence (false-parity exhaustion family) and
//!   PERF existence (even-loop batteries with no perfect model).
//!
//! Experiments: `T1-*-exist`, `T2-EGCWA-exist`, `T2-ICWA-exist`,
//! `T2-DSM-exist`, `T2-PERF-exist`.

use ddb_bench::families;
use ddb_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddb_models::Cost;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_positive_trivial(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1-EGCWA-exist (O(1) on positive DBs)");
    for n in [64usize, 256, 1024] {
        let db = families::table1_random(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let ans = ddb_core::egcwa::has_model(&db, &mut cost).unwrap();
                assert!(ans && cost.sat_calls == 0);
                ans
            })
        });
    }
    g.finish();
}

fn bench_np_phase_transition(c: &mut Criterion) {
    let mut g = c.benchmark_group("T2-EGCWA-exist (NP-complete; 3-CNF at ratio 4.26)");
    for n in [40usize, 80, 120] {
        let db = families::phase_transition(n, 9);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::egcwa::has_model(&db, &mut cost)
            })
        });
    }
    g.finish();
}

fn bench_dsm_sigma2(c: &mut Criterion) {
    let mut g = c.benchmark_group("T2-DSM-exist (Σᵖ₂; false-parity exhaustion)");
    for n in [2u32, 3, 4] {
        let db = families::dsm_exist_hard(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let ans = ddb_core::dsm::has_model(&db, &mut cost).unwrap();
                assert!(!ans, "family has no stable model");
                ans
            })
        });
    }
    g.finish();
}

fn bench_perf_sigma2(c: &mut Criterion) {
    let mut g = c.benchmark_group("T2-PERF-exist (Σᵖ₂; even-loop batteries)");
    for k in [2usize, 4, 6] {
        let db = families::even_loops(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let ans = ddb_core::perf::has_model(&db, &mut cost).unwrap();
                assert!(!ans, "mutual strict priorities kill every model");
                ans
            })
        });
    }
    g.finish();
}

fn bench_icwa_constant(c: &mut Criterion) {
    let mut g = c.benchmark_group("T2-ICWA-exist (O(1): stratifiability asserts consistency)");
    for n in [16usize, 64, 256] {
        let db = {
            // Integrity-free stratified family.
            let raw = families::stratified_random(n, 3);
            let mut clean = ddb_logic::Database::new(raw.symbols().clone());
            for r in raw.rules().iter().filter(|r| !r.is_integrity()) {
                clean.add_rule(r.clone());
            }
            clean
        };
        let strata = db.stratification().expect("stratified");
        let layers = ddb_core::icwa::Layers::new(
            &db,
            &strata,
            &ddb_logic::Interpretation::empty(db.num_atoms()),
        );
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let ans = ddb_core::icwa::has_model(&db, &layers, &mut cost).unwrap();
                assert!(ans && cost.sat_calls == 0);
                ans
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_positive_trivial, bench_np_phase_transition,
              bench_dsm_sigma2, bench_perf_sigma2, bench_icwa_constant
}
criterion_main!(benches);
