//! `bench_magic` — goal-directed (magic) grounding and the magic route
//! against whole-program grounding on the bound-chains family.
//!
//! The family (`bound_chains`) is `CHAINS` independent linear chains
//! with a disjunctive founder choice each, all sharing the same
//! recursive reachability rules keyed on the chain identifier; the
//! query is bound to chain 0's last node. Whole-program grounding pays
//! for every chain; the demand-driven grounder and the planner's magic
//! route confine the work to one. Each timed pair is preceded by an
//! untimed audit asserting byte-identical answers and — at depth ≥ 64 —
//! at least a 10× drop in grounded rule instances, the acceptance bar
//! for the rewrite, enforced on every bench run. The grounded-rule,
//! grounded-atom and SAT-call counts land in the `DDB_BENCH_JSON`
//! metrics file (`BENCH_magic.json` in the repository root).

use ddb_bench::microbench::{
    criterion_group, criterion_main, record_metric, BenchmarkId, Criterion,
};
use ddb_core::{RoutingMode, SemanticsConfig, SemanticsId, Verdict};
use ddb_ground::parse::parse_datalog;
use ddb_ground::{ground_magic, ground_reduced, DatalogProgram, PredAtom};
use ddb_logic::Database;
use ddb_models::Cost;
use ddb_workloads::structured::bound_chains;
use std::time::Duration;

const CHAINS: usize = 16;
const LIMIT: usize = 1_000_000;
const DEPTHS: [usize; 3] = [16, 64, 128];

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

fn family(depth: usize) -> (DatalogProgram, PredAtom, String) {
    let (source, query) = bound_chains(CHAINS, depth);
    let prog = parse_datalog(&source).expect("bound_chains parses");
    let q = parse_datalog(&format!("{query}."))
        .expect("query atom parses")
        .rules[0]
        .head[0]
        .clone();
    (prog, q, query)
}

fn infers(db: &Database, name: &str, id: SemanticsId, routing: RoutingMode) -> (Verdict, u64) {
    let atom = db.symbols().lookup(name).expect("query atom grounded");
    let mut cost = Cost::new();
    let answer = SemanticsConfig::new(id)
        .with_routing(routing)
        .infers_literal(db, atom.pos(), &mut cost)
        .expect("unbudgeted run cannot be interrupted");
    (answer, cost.sat_calls)
}

/// The acceptance audit: identical answers rewritten-vs-whole under a
/// minimal-model and a stable semantics, never more SAT calls on the
/// magic route, and ≥ 10× fewer grounded rules at depth ≥ 64. Records
/// the counts into the metrics file.
fn audit(depth: usize) {
    let (prog, q, name) = family(depth);
    let whole = ground_reduced(&prog, LIMIT).expect("whole grounding fits");
    let magic = ground_magic(&prog, &q, LIMIT).expect("magic grounding fits");
    record_metric(
        "bench_magic grounded rules",
        &format!("whole/{depth}"),
        whole.len() as f64,
    );
    record_metric(
        "bench_magic grounded rules",
        &format!("magic/{depth}"),
        magic.len() as f64,
    );
    record_metric(
        "bench_magic grounded atoms",
        &format!("whole/{depth}"),
        whole.num_atoms() as f64,
    );
    record_metric(
        "bench_magic grounded atoms",
        &format!("magic/{depth}"),
        magic.num_atoms() as f64,
    );
    if depth >= 64 {
        assert!(
            magic.len() * 10 <= whole.len(),
            "depth {depth}: goal-directed grounding must be >= 10x smaller \
             ({} vs {} rules)",
            magic.len(),
            whole.len()
        );
    }
    for id in [SemanticsId::Gcwa, SemanticsId::Dsm] {
        let (a_whole, sat_generic) = infers(&whole, &name, id, RoutingMode::Generic);
        let (a_route, sat_route) = infers(&whole, &name, id, RoutingMode::Auto);
        let (a_magic, sat_magic) = infers(&magic, &name, id, RoutingMode::Auto);
        assert_eq!(
            a_whole, a_route,
            "{id:?} depth {depth}: magic route flipped the answer"
        );
        assert_eq!(
            a_whole, a_magic,
            "{id:?} depth {depth}: magic grounding flipped the answer"
        );
        assert!(
            sat_route <= sat_generic,
            "{id:?} depth {depth}: magic route must not cost more SAT calls \
             ({sat_route} vs {sat_generic})"
        );
        let tag = id.name();
        record_metric(
            "bench_magic SAT calls",
            &format!("{tag}-generic/{depth}"),
            sat_generic as f64,
        );
        record_metric(
            "bench_magic SAT calls",
            &format!("{tag}-rewritten/{depth}"),
            sat_route as f64,
        );
        record_metric(
            "bench_magic SAT calls",
            &format!("{tag}-magic-grounded/{depth}"),
            sat_magic as f64,
        );
        eprintln!(
            "bench_magic depth={depth} {tag}: rules {} whole vs {} magic; \
             SAT {sat_generic} generic vs {sat_route} rewritten",
            whole.len(),
            magic.len(),
        );
    }
}

/// Grounding time: demand-driven vs whole-program instantiation.
fn bench_grounding(c: &mut Criterion) {
    let mut g = c.benchmark_group("bench_magic-grounding (magic vs whole)");
    for &depth in &DEPTHS {
        audit(depth);
        let (prog, q, _) = family(depth);
        g.bench_with_input(BenchmarkId::new("whole", depth), &depth, |b, _| {
            b.iter(|| ground_reduced(&prog, LIMIT).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("magic", depth), &depth, |b, _| {
            b.iter(|| ground_magic(&prog, &q, LIMIT).unwrap())
        });
    }
    g.finish();
}

/// Query time on the whole grounding: the planner's magic route against
/// the generic whole-database procedure (GCWA cautious literal).
fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("bench_magic-GCWA-lit (magic route vs generic)");
    for &depth in &DEPTHS {
        let (prog, _, name) = family(depth);
        let whole = ground_reduced(&prog, LIMIT).unwrap();
        let atom = whole.symbols().lookup(&name).unwrap();
        g.bench_with_input(BenchmarkId::new("magic-route", depth), &depth, |b, _| {
            let cfg = SemanticsConfig::new(SemanticsId::Gcwa);
            b.iter(|| {
                let mut cost = Cost::new();
                cfg.infers_literal(&whole, atom.pos(), &mut cost).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("generic", depth), &depth, |b, _| {
            let cfg = SemanticsConfig::new(SemanticsId::Gcwa).with_routing(RoutingMode::Generic);
            b.iter(|| {
                let mut cost = Cost::new();
                cfg.infers_literal(&whole, atom.pos(), &mut cost).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = magic;
    config = config();
    targets = bench_grounding, bench_query
);
criterion_main!(magic);
