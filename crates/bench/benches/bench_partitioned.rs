//! The partition-parameterized rows (CCWA, ECWA/CIRC, ICWA): how the
//! ⟨P;Q;Z⟩ split shapes cost, plus the minimal-model engine ablation
//! (shrink-loop minimization vs full enumeration).
//!
//! Experiments: `T1-CCWA-lit`, `T1-ECWA-lit/form`, `T1-ICWA-lit`.

use ddb_bench::families;
use ddb_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddb_logic::Atom;
use ddb_models::{circumscribe, classical, minimal, Cost, Partition};
use ddb_workloads::queries;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

/// Partition with the first `p_frac`/`q_frac` fractions of atoms in P/Q.
fn partition(n: usize, p_frac: f64, q_frac: f64) -> Partition {
    let p_end = (n as f64 * p_frac) as usize;
    let q_end = p_end + (n as f64 * q_frac) as usize;
    Partition::from_p_q(
        n,
        (0..p_end).map(|i| Atom::new(i as u32)),
        (p_end..q_end.min(n)).map(|i| Atom::new(i as u32)),
    )
}

fn bench_ccwa_partition_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1-CCWA-lit by |P| fraction (n=24)");
    let n = 24usize;
    let db = families::table1_random(n, 31);
    let lit = queries::random_literal(n, 5);
    for (label, p_frac) in [("P=25%", 0.25), ("P=50%", 0.5), ("P=100%", 1.0)] {
        let part = partition(n, p_frac, (1.0 - p_frac) / 2.0);
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::ccwa::infers_literal(&db, &part, lit, &mut cost)
            })
        });
    }
    g.finish();
}

fn bench_ecwa_formula(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1-ECWA-form (one Πᵖ₂ CEGAR query)");
    for n in [16usize, 24, 32] {
        let db = families::table1_random(n, 31);
        let part = partition(n, 0.5, 0.25);
        let f = queries::random_formula(n, 6, 9);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::ecwa::infers_formula(&db, &part, &f, &mut cost)
            })
        });
    }
    g.finish();
}

fn bench_minimal_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine ablation: CEGAR inference vs full MM enumeration");
    for n in [10usize, 14, 18] {
        let db = families::table1_random(n, 37);
        let f = queries::random_formula(n, 6, 9);
        g.bench_with_input(BenchmarkId::new("CEGAR", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                circumscribe::holds_in_all_minimal_models(&db, &f, &mut cost)
            })
        });
        g.bench_with_input(BenchmarkId::new("enumerate-all", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                minimal::minimal_models(&db, &mut cost)
                    .unwrap()
                    .iter()
                    .all(|m| f.eval(m))
            })
        });
    }
    g.finish();
}

fn bench_shrink_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("minimization ablation: incremental vs fresh solver per step");
    for n in [32usize, 64, 128] {
        let db = families::table1_random(n, 41);
        let part = ddb_models::Partition::minimize_all(n);
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let m = classical::some_model(&db, &mut cost)
                    .unwrap()
                    .expect("positive DB");
                minimal::pz_minimize(&db, &m, &part, &mut cost)
            })
        });
        g.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let m = classical::some_model(&db, &mut cost)
                    .unwrap()
                    .expect("positive DB");
                minimal::pz_minimize_fresh(&db, &m, &part, &mut cost)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ccwa_partition_sweep, bench_ecwa_formula,
              bench_minimal_engine, bench_shrink_loop
}
criterion_main!(benches);
