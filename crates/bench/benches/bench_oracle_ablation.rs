//! Ablations on the substrate, as called out in DESIGN.md:
//!
//! * **CDCL vs DPLL** — what the learning oracle buys on phase-transition
//!   CNFs (the NP oracle inside every higher cell);
//! * **direct vs census** GCWA-false-set computation — `|V|` Σᵖ₂ queries
//!   versus the `O(log |V|)`-query census structure of \[7\];
//! * **active-atom closure vs explicit `T_DB ↑ ω`** — the polynomial DDR
//!   fixpoint against its exponential executable specification.

use ddb_bench::families;
use ddb_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddb_logic::cnf::database_to_cnf;
use ddb_models::{fixpoint, Cost};
use ddb_sat::{dpll, Solver};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_cdcl_vs_dpll(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle ablation: CDCL vs DPLL (3-CNF @ 4.26)");
    for n in [20usize, 30, 40] {
        let db = families::phase_transition(n, 21);
        let cnf = database_to_cnf(&db);
        g.bench_with_input(BenchmarkId::new("CDCL", n), &n, |b, _| {
            b.iter(|| Solver::from_cnf(&cnf).solve().unwrap().is_sat())
        });
        g.bench_with_input(BenchmarkId::new("DPLL", n), &n, |b, _| {
            b.iter(|| dpll::is_sat(&cnf))
        });
    }
    g.finish();
}

fn bench_gcwa_direct_vs_census(c: &mut Criterion) {
    let mut g = c.benchmark_group("GCWA ablation: direct N-set vs O(log n) census");
    for n in [12usize, 16, 24] {
        let db = families::table1_random(n, 17);
        g.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::gcwa::false_atoms(&db, &mut cost).unwrap().count()
            })
        });
        g.bench_with_input(BenchmarkId::new("census", n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::gcwa::census_false_atoms(&db, &mut cost).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_closure_vs_explicit_fixpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("DDR ablation: active-atom closure vs explicit T↑ω");
    for n in [8usize, 12, 16] {
        let db = families::layered(n);
        g.bench_with_input(BenchmarkId::new("closure", n), &n, |b, _| {
            b.iter(|| fixpoint::active_atoms(&db).count())
        });
        g.bench_with_input(BenchmarkId::new("explicit", n), &n, |b, _| {
            b.iter(|| {
                fixpoint::model_state(&db, 1_000_000)
                    .unwrap()
                    .map(|s| s.len())
            })
        });
    }
    g.finish();
}

fn bench_clause_minimization(c: &mut Criterion) {
    let mut g = c.benchmark_group("CDCL ablation: learnt-clause minimization on vs off");
    for n in [40usize, 60, 80] {
        let db = families::phase_transition(n, 33);
        let cnf = database_to_cnf(&db);
        g.bench_with_input(BenchmarkId::new("minimize-on", n), &n, |b, _| {
            b.iter(|| {
                let mut s = Solver::from_cnf(&cnf);
                s.set_clause_minimization(true);
                s.solve().unwrap().is_sat()
            })
        });
        g.bench_with_input(BenchmarkId::new("minimize-off", n), &n, |b, _| {
            b.iter(|| {
                let mut s = Solver::from_cnf(&cnf);
                s.set_clause_minimization(false);
                s.solve().unwrap().is_sat()
            })
        });
    }
    g.finish();
}

fn bench_component_counting(c: &mut Criterion) {
    use ddb_workloads::structured::even_loops;
    let mut g =
        c.benchmark_group("component ablation: MM counting, product vs enumeration (k even loops)");
    for k in [4usize, 6, 8] {
        // even_loops(k): k disconnected 2-atom components, 2^k minimal
        // models (clausally a∨b per loop).
        let db = even_loops(k);
        g.bench_with_input(BenchmarkId::new("componentwise", k), &k, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let c = ddb_models::components::count_minimal_models(&db, &mut cost).unwrap();
                assert_eq!(c, 1 << k);
                c
            })
        });
        g.bench_with_input(BenchmarkId::new("enumerate", k), &k, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_models::minimal::minimal_models(&db, &mut cost)
                    .unwrap()
                    .len()
            })
        });
    }
    g.finish();
}

fn bench_transversal_dualization(c: &mut Criterion) {
    let mut g = c.benchmark_group("EGCWA derived clauses: Berge dualization");
    for pairs in [4usize, 6, 8] {
        // `pairs` disjoint disjunctions → `pairs` derived clauses but an
        // exponential minimal-model set to dualize.
        let src: String = (0..pairs).map(|i| format!("a{i} | b{i}. ")).collect();
        let db = ddb_logic::parse::parse_program(&src).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(pairs), &pairs, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let clauses = ddb_core::egcwa::derived_integrity_clauses(&db, 1_000_000, &mut cost)
                    .unwrap()
                    .expect("within cap");
                assert_eq!(clauses.len(), pairs);
                clauses.len()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cdcl_vs_dpll, bench_gcwa_direct_vs_census,
              bench_closure_vs_explicit_fixpoint, bench_clause_minimization,
              bench_component_counting, bench_transversal_dualization
}
criterion_main!(benches);
