//! `T1-obs-overhead` — the observability tax on the solve stack.
//!
//! The spans, counters and latency histograms on the oracle hot path are
//! always compiled in; what varies at runtime is whether an event sink is
//! installed. With no sink, `emit` is one relaxed atomic load and the
//! event is never constructed; with a sink, every span transition and
//! buffered counter bump is materialized into a thread-local batch. This
//! bench times the same EGCWA inference in both configurations, asserts
//! the *semantics* are untouched — identical verdict, identical oracle
//! bill, one `sat.solve.ns` histogram sample per SAT call either way —
//! and records the derived ns-per-oracle-call delta as a synthetic
//! `overhead/ns_per_call_delta` metric in the `DDB_BENCH_JSON` summary.
//!
//! The delta is a guard rail, not a pass/fail gate: wall-clock bounds are
//! hostile to CI hardware variance, so the hard assertions here are only
//! about observational transparency (counts), never about time.

use ddb_bench::microbench::{black_box, criterion_group, criterion_main, record_metric, Criterion};
use ddb_core::{SemanticsConfig, SemanticsId};
use ddb_logic::{Atom, Database, Formula};
use ddb_models::Cost;
use ddb_obs::{Sink, TraceEvent};
use ddb_workloads::structured;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast() -> bool {
    std::env::var_os("DDB_BENCH_FAST").is_some_and(|v| !v.is_empty() && v != "0")
}

fn config() -> Criterion {
    let (measure, warmup) = if fast() { (200, 50) } else { (600, 150) };
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(measure))
        .warm_up_time(Duration::from_millis(warmup))
}

/// Discards every event. Isolates the cost of *producing* the event
/// stream (construction, stamping, thread-local batching, delivery) from
/// the cost of any particular consumer.
struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &TraceEvent) {}
}

fn workload() -> (Database, Formula) {
    let towers = if fast() { 2 } else { 4 };
    let db = structured::sliceable_towers(towers, 3);
    (db, Formula::Atom(Atom::new(0)))
}

/// One full inference; returns the oracle bill.
fn run_once(cfg: &SemanticsConfig, db: &Database, f: &Formula) -> u64 {
    let mut cost = Cost::new();
    black_box(cfg.infers_formula(db, f, &mut cost).unwrap());
    cost.sat_calls
}

fn bench_obs_overhead(c: &mut Criterion) {
    let (db, f) = workload();
    let cfg = SemanticsConfig::new(SemanticsId::Egcwa);

    // Transparency audit: the instrumented run must ask the oracle the
    // exact same questions, and the histogram must catch every call.
    ddb_obs::reset_histograms();
    let calls_off = run_once(&cfg, &db, &f);
    assert_eq!(
        ddb_obs::hist_snapshot().count("sat.solve.ns"),
        calls_off,
        "sink off: one latency sample per SAT call"
    );
    ddb_obs::set_sink(Arc::new(NullSink));
    ddb_obs::reset_histograms();
    let calls_on = run_once(&cfg, &db, &f);
    ddb_obs::clear_sink();
    assert_eq!(
        calls_on, calls_off,
        "installing a sink must not change the oracle bill"
    );
    assert!(calls_off > 0, "workload must exercise the oracle");

    let mut g = c.benchmark_group("T1-obs-overhead (sink off vs on)");
    g.bench_function("sink-off", |b| b.iter(|| run_once(&cfg, &db, &f)));
    g.bench_function("sink-on", |b| {
        ddb_obs::set_sink(Arc::new(NullSink));
        b.iter(|| run_once(&cfg, &db, &f));
        ddb_obs::clear_sink();
    });
    g.finish();

    // Derived guard-rail metric: ns per oracle call attributable to the
    // event stream, from a matched pair of untimed-by-criterion loops.
    let iters = if fast() { 20 } else { 60 };
    let timed = |on: bool| -> f64 {
        if on {
            ddb_obs::set_sink(Arc::new(NullSink));
        }
        let start = Instant::now();
        for _ in 0..iters {
            black_box(run_once(&cfg, &db, &f));
        }
        let ns = start.elapsed().as_nanos() as f64;
        if on {
            ddb_obs::clear_sink();
        }
        ns / (iters as f64 * calls_off as f64)
    };
    let off_ns_per_call = timed(false);
    let on_ns_per_call = timed(true);
    record_metric(
        "overhead",
        "ns_per_call_delta",
        on_ns_per_call - off_ns_per_call,
    );
    record_metric("overhead", "ns_per_call_sink_off", off_ns_per_call);
    record_metric("overhead", "ns_per_call_sink_on", on_ns_per_call);
}

criterion_group!(
    name = obs_overhead;
    config = config();
    targets = bench_obs_overhead
);
criterion_main!(obs_overhead);
