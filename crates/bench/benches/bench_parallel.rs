//! `T1-parallel` — worker-pool scaling of the three pool-routed
//! surfaces: island-decomposed existence, batched formula inference, and
//! the profile matrix, each at 1/2/4/8 worker threads.
//!
//! The pool's contract is *determinism first*: answers, model sets and
//! oracle bills are byte-identical at every width (asserted by the
//! untimed audits here and by `crates/core/tests/parallel.rs`), so the
//! only thing allowed to vary is wall-clock time. Speedup is bounded by
//! the host: the committed `BENCH_parallel.json` records
//! `host_parallelism` next to the timings, and a 1-core container will
//! honestly show a flat (or pool-overhead) curve rather than a 2×
//! headline. Set `DDB_BENCH_FAST=1` for the CI smoke variant (smaller
//! instances, same coverage).

use ddb_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddb_core::{parallel, profile, SemanticsConfig, SemanticsId};
use ddb_logic::{Atom, Database, Formula};
use ddb_models::Cost;
use ddb_workloads::structured;
use std::time::Duration;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn fast() -> bool {
    std::env::var_os("DDB_BENCH_FAST").is_some_and(|v| !v.is_empty() && v != "0")
}

fn config() -> Criterion {
    let (measure, warmup) = if fast() { (200, 50) } else { (700, 200) };
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(measure))
        .warm_up_time(Duration::from_millis(warmup))
}

/// The islands family: disjoint towers, one island each.
fn islands_db() -> Database {
    let towers = if fast() { 4 } else { 12 };
    structured::sliceable_towers(towers, 4)
}

/// Stable-model existence over many islands — every width must agree
/// with the sequential answer and oracle bill before anything is timed.
/// The audit also cross-checks the latency histograms against the
/// counters: every SAT call must record exactly one `sat.solve.ns`
/// sample, at every width.
fn bench_islands_exist(c: &mut Criterion) {
    let db = islands_db();
    let mut base = Cost::new();
    let reference = SemanticsConfig::new(SemanticsId::Dsm)
        .has_model(&db, &mut base)
        .unwrap();
    let mut g = c.benchmark_group("T1-parallel-DSM-exist (threads scaling)");
    for width in WIDTHS {
        let cfg = SemanticsConfig::new(SemanticsId::Dsm).with_threads(width);
        ddb_obs::reset_histograms();
        let solves_before = ddb_obs::snapshot().get("sat.solves");
        let mut cost = Cost::new();
        assert_eq!(cfg.has_model(&db, &mut cost).unwrap(), reference);
        assert_eq!(cost.sat_calls, base.sat_calls, "width {width} oracle bill");
        let solves = ddb_obs::snapshot().get("sat.solves") - solves_before;
        let samples = ddb_obs::hist_snapshot().count("sat.solve.ns");
        assert_eq!(
            samples, solves,
            "width {width}: sat.solve.ns histogram samples vs sat.solves counter"
        );
        g.bench_with_input(BenchmarkId::new("exist", width), &width, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                cfg.has_model(&db, &mut cost).unwrap()
            })
        });
    }
    g.finish();
}

/// A batch of single-atom GCWA queries sharing one parse/analysis pass.
fn bench_batch_query(c: &mut Criterion) {
    let db = structured::sliceable_towers(2, 3);
    let formulas: Vec<Formula> = (0..if fast() { 4 } else { 8 })
        .map(|i| Formula::Atom(Atom::new(i as u32)))
        .collect();
    let reference =
        parallel::infers_formulas_batch(&SemanticsConfig::new(SemanticsId::Gcwa), &db, &formulas)
            .unwrap();
    let mut g = c.benchmark_group("T1-parallel-GCWA-batch (threads scaling)");
    for width in WIDTHS {
        let cfg = SemanticsConfig::new(SemanticsId::Gcwa).with_threads(width);
        let got = parallel::infers_formulas_batch(&cfg, &db, &formulas).unwrap();
        for ((v, c1), (rv, rc)) in got.iter().zip(reference.iter()) {
            assert_eq!(v, rv, "width {width} verdict");
            assert_eq!(c1.sat_calls, rc.sat_calls, "width {width} oracle bill");
        }
        g.bench_with_input(BenchmarkId::new("batch", width), &width, |b, _| {
            b.iter(|| parallel::infers_formulas_batch(&cfg, &db, &formulas).unwrap())
        });
    }
    g.finish();
}

/// The 30-cell profile matrix with independent cells fanned out.
fn bench_profile(c: &mut Criterion) {
    let db = structured::sliceable_towers(2, 2);
    let lit = Atom::new(0).pos();
    let f = Formula::Atom(Atom::new(0));
    let reference = profile::profile_all_budgeted(&db, lit, &f, None, 1);
    let mut g = c.benchmark_group("T1-parallel-profile (threads scaling)");
    for width in WIDTHS {
        let wide = profile::profile_all_budgeted(&db, lit, &f, None, width);
        assert_eq!(reference.len(), wide.len());
        for (r, w) in reference.iter().zip(wide.iter()) {
            assert_eq!(r.answer, w.answer, "width {width} cell answer");
        }
        g.bench_with_input(BenchmarkId::new("profile", width), &width, |b, _| {
            b.iter(|| profile::profile_all_budgeted(&db, lit, &f, None, width))
        });
    }
    g.finish();
}

criterion_group!(
    name = parallel_pool;
    config = config();
    targets = bench_islands_exist, bench_batch_query, bench_profile
);
criterion_main!(parallel_pool);
