//! The Πᵖ₂-complete inference cells: GCWA / EGCWA / ECWA / ICWA / PERF /
//! DSM literal and formula inference.
//!
//! Two regimes per cell, matching how complexity theory reads the result:
//! the *average case* on random databases (often easy — CEGAR refutes
//! quickly), and the *worst case* on the valid-parity QBF family, where
//! the candidate count provably doubles per universal variable.
//!
//! Experiments: `T1-GCWA-lit`, `T1-EGCWA-lit/form`, `T1-ECWA-lit/form`,
//! `T1-ICWA-lit`, `T1-PERF-lit`, `T1-DSM-lit`, `T2-*` variants.

use ddb_bench::families;
use ddb_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddb_core::{SemanticsConfig, SemanticsId};
use ddb_models::Cost;
use ddb_workloads::queries;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_parity_worst_case(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1-GCWA-lit worst case (parity 2QBF; candidates = 2^n)");
    for n in [2u32, 3, 4, 5] {
        let inst = families::qbf_parity_hard(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                let ans =
                    ddb_core::gcwa::infers_literal(&inst.db, inst.w.neg(), &mut cost).unwrap();
                assert!(ans, "parity family is valid");
                ans
            })
        });
    }
    g.finish();
}

fn bench_mm_semantics_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("T1 minimal-model rows, random positive DBs (lit)");
    for id in [
        SemanticsId::Gcwa,
        SemanticsId::Egcwa,
        SemanticsId::Ecwa,
        SemanticsId::Perf,
        SemanticsId::Dsm,
    ] {
        let cfg = SemanticsConfig::new(id);
        for n in [16usize, 32] {
            let db = families::table1_random(n, 13);
            let lit = queries::random_literal(n, 5);
            g.bench_with_input(BenchmarkId::new(id.name(), n), &n, |b, _| {
                b.iter(|| {
                    let mut cost = Cost::new();
                    cfg.infers_literal(&db, lit, &mut cost).unwrap()
                })
            });
        }
    }
    g.finish();
}

fn bench_formula_inference_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("T2 formula inference (deductive DBs)");
    for id in [SemanticsId::Gcwa, SemanticsId::Egcwa, SemanticsId::Ecwa] {
        let cfg = SemanticsConfig::new(id);
        for n in [16usize, 32] {
            let db = families::table2_random(n, 13);
            let f = queries::random_formula(n, 6, 5);
            g.bench_with_input(BenchmarkId::new(id.name(), n), &n, |b, _| {
                b.iter(|| {
                    let mut cost = Cost::new();
                    cfg.infers_formula(&db, &f, &mut cost).unwrap()
                })
            });
        }
    }
    g.finish();
}

fn bench_icwa_stratified(c: &mut Criterion) {
    let mut g = c.benchmark_group("T2-ICWA-lit (stratified DBs)");
    for n in [8usize, 12, 16] {
        let db = families::stratified_random(n, 3);
        let lit = queries::random_literal(n, 5);
        let cfg = SemanticsConfig::new(SemanticsId::Icwa);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                cfg.infers_literal(&db, lit, &mut cost).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_pdsm_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("T2-PDSM-lit (normal DBs, 3-valued)");
    for n in [4usize, 6, 8] {
        let db = families::normal_random(n, 3);
        let lit = queries::random_literal(n, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cost = Cost::new();
                ddb_core::pdsm::infers_literal(&db, lit, &mut cost)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parity_worst_case, bench_mm_semantics_random,
              bench_formula_inference_table2, bench_icwa_stratified,
              bench_pdsm_inference
}
criterion_main!(benches);
