//! `T1-slicing` — the query-relevant slicing route against the generic
//! whole-database procedures on the sliceable-towers family.
//!
//! The query (tower 0's first-stage closure atom) has a 5-atom relevance
//! slice however many towers exist, so the sliced route's cost stays
//! flat while the generic route pays for every minimal model of the
//! product database. Each timed pair is preceded by an untimed oracle
//! audit asserting the sliced route answers identically with strictly
//! fewer SAT calls — the acceptance bar for the route, enforced on every
//! bench run.

use ddb_bench::families;
use ddb_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddb_core::{RoutingMode, SemanticsConfig, SemanticsId};
use ddb_logic::{Atom, Literal};
use ddb_models::Cost;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
}

/// Tower 0's first-stage closure atom `c₁` (layout: c₀ d₀ a₁ b₁ c₁ …).
fn query() -> Atom {
    Atom::new(4)
}

/// Asserts answer equality and strictly fewer oracle calls for the
/// sliced route, returning the two call counts for the report.
fn audit(id: SemanticsId, towers: usize, lit: Literal) -> (u64, u64) {
    let db = families::sliceable(towers);
    let mut ca = Cost::new();
    let mut cg = Cost::new();
    let sliced = SemanticsConfig::new(id)
        .infers_literal(&db, lit, &mut ca)
        .unwrap();
    let generic = SemanticsConfig::new(id)
        .with_routing(RoutingMode::Generic)
        .infers_literal(&db, lit, &mut cg)
        .unwrap();
    assert_eq!(sliced, generic, "{id:?} on {towers} towers");
    assert!(
        ca.sat_calls < cg.sat_calls,
        "{id:?} on {towers} towers: sliced route must be strictly cheaper \
         ({} vs {} SAT calls)",
        ca.sat_calls,
        cg.sat_calls
    );
    (ca.sat_calls, cg.sat_calls)
}

fn bench_pair(c: &mut Criterion, group: &str, id: SemanticsId, lit: Literal, sizes: &[usize]) {
    let mut g = c.benchmark_group(group);
    for &towers in sizes {
        let (sat_sliced, sat_generic) = audit(id, towers, lit);
        eprintln!(
            "{group} towers={towers}: {sat_sliced} sliced vs {sat_generic} generic SAT calls"
        );
        let db = families::sliceable(towers);
        g.bench_with_input(BenchmarkId::new("sliced", towers), &towers, |b, _| {
            let cfg = SemanticsConfig::new(id);
            b.iter(|| {
                let mut cost = Cost::new();
                cfg.infers_literal(&db, lit, &mut cost).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("generic", towers), &towers, |b, _| {
            let cfg = SemanticsConfig::new(id).with_routing(RoutingMode::Generic);
            b.iter(|| {
                let mut cost = Cost::new();
                cfg.infers_literal(&db, lit, &mut cost).unwrap()
            })
        });
    }
    g.finish();
}

/// CCWA literal inference enumerates characteristic models: the generic
/// route pays per minimal model of the whole product database.
fn bench_ccwa(c: &mut Criterion) {
    bench_pair(
        c,
        "T1-slicing-CCWA-lit (sliced vs generic)",
        SemanticsId::Ccwa,
        query().pos(),
        &[1, 2, 3],
    );
}

/// DSM cautious literal inference: the sliced stability checks see a
/// 5-atom program instead of the product database.
fn bench_dsm(c: &mut Criterion) {
    bench_pair(
        c,
        "T1-slicing-DSM-lit (sliced vs generic)",
        SemanticsId::Dsm,
        query().pos(),
        &[2, 4, 8],
    );
}

/// PDSM negative-literal inference over 3-valued stable models — the
/// steepest generic/sliced gap of the ten semantics.
fn bench_pdsm(c: &mut Criterion) {
    bench_pair(
        c,
        "T1-slicing-PDSM-neglit (sliced vs generic)",
        SemanticsId::Pdsm,
        query().neg(),
        &[1, 2, 3],
    );
}

criterion_group!(
    name = slicing;
    config = config();
    targets = bench_ccwa, bench_dsm, bench_pdsm
);
criterion_main!(slicing);
