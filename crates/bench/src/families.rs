//! Instance families behind each table cell.

use ddb_logic::Database;
use ddb_reductions::gcwa_hardness::{forall_exists_to_gcwa, GcwaInstance};
use ddb_reductions::qbf::random_forall_exists;
use ddb_workloads::random::{random_db, random_stratified_db, DbSpec};
use ddb_workloads::structured;

/// Table-1 average-case family: random positive DDBs with `n` atoms and
/// `2n` rules.
pub fn table1_random(n: usize, seed: u64) -> Database {
    random_db(&DbSpec::positive(n, 2 * n), seed)
}

/// Table-2 average-case family: random deductive DDBs (integrity clauses
/// at 15%).
pub fn table2_random(n: usize, seed: u64) -> Database {
    random_db(&DbSpec::deductive(n, 2 * n), seed)
}

/// Normal-database family (negation + integrity) for DSM/PDSM/PERF rows.
pub fn normal_random(n: usize, seed: u64) -> Database {
    random_db(&DbSpec::normal(n, 2 * n), seed)
}

/// Stratified family for the ICWA/PERF rows.
pub fn stratified_random(n: usize, seed: u64) -> Database {
    random_stratified_db(n, 2 * n, 3.min(n.max(1)), seed)
}

/// The Πᵖ₂-hard family: QBF reductions with `nx` universal variables
/// (instance difficulty is exponential in `nx`, the quantity the
/// lower-bound benches scale).
pub fn qbf_hard(nx: u32, ny: u32, seed: u64) -> GcwaInstance {
    let clauses = (2 * (nx + ny)) as usize;
    forall_exists_to_gcwa(&random_forall_exists(nx, ny, clauses, 3, seed))
}

/// The worst-case Πᵖ₂ family: the *valid* parity QBF through the GCWA
/// reduction. Every universal assignment has a distinct existential
/// witness, so the CEGAR loop must refute signatures one by one —
/// measured time is genuinely exponential in `n`.
pub fn qbf_parity_hard(n: u32) -> GcwaInstance {
    forall_exists_to_gcwa(&ddb_reductions::qbf::parity_family(n))
}

/// The worst-case Σᵖ₂-existence family for DSM: the complement of the
/// parity QBF is *false*, so the stable-model search must exhaust all
/// `2^n` outer choices before answering **no**.
pub fn dsm_exist_hard(n: u32) -> Database {
    let q = ddb_reductions::qbf::parity_family(n).complement();
    ddb_reductions::dsm_hardness::exists_forall_to_dsm_existence(&q).db
}

/// The tractable-cell polynomial family (all atoms active).
pub fn tractable_chain(n: usize) -> Database {
    structured::horn_chain(n)
}

/// Layered disjunctive family: polynomial for DDR/PWS closures,
/// exponential minimal-model count for enumeration procedures.
pub fn layered(n: usize) -> Database {
    structured::layered_disjunctive((n / 4).max(1), 4)
}

/// Query-relevant slicing family: `towers` independent disjunctive
/// towers, two stages high. A literal query about one tower's first
/// stage slices down to 5 atoms however many towers exist, so the
/// sliced route's cost is flat while the generic route's grows with the
/// product of per-tower minimal-model counts.
pub fn sliceable(towers: usize) -> Database {
    structured::sliceable_towers(towers, 2)
}

/// NP-complete existence family (Table 2 EGCWA row): random 3-CNF near
/// the phase transition, as a deductive database.
pub fn phase_transition(n: usize, seed: u64) -> Database {
    structured::phase_transition_db(n, 4.26, 3, seed)
}

/// Σᵖ₂ existence family for DSM: even loops plus a guarded odd loop.
pub fn stable_trap(k: usize) -> Database {
    structured::odd_loop_trap(k)
}

/// Stable-model enumeration family: `2^k` stable models.
pub fn even_loops(k: usize) -> Database {
    structured::even_loops(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_expected_classes() {
        assert!(table1_random(10, 1).is_positive());
        assert!(!table2_random(30, 1).has_negation());
        assert!(stratified_random(12, 1).stratification().is_some());
        assert!(qbf_hard(2, 2, 1).db.is_positive());
        assert!(tractable_chain(50).is_horn());
    }

    #[test]
    fn qbf_hard_scales_with_nx() {
        let a = qbf_hard(2, 2, 5);
        let b = qbf_hard(4, 2, 5);
        assert!(b.db.num_atoms() > a.db.num_atoms());
    }
}
