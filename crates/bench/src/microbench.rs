//! A zero-dependency, criterion-compatible micro-benchmark harness.
//!
//! The offline build bakes in no external crates, so the `benches/`
//! directory runs on this shim instead of criterion. It reproduces the
//! subset of the criterion API the benches use — [`Criterion`] with the
//! builder knobs, [`BenchmarkId`], benchmark groups with
//! `bench_with_input`/`bench_function`, `b.iter(..)`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with plain
//! `std::time::Instant` sampling underneath.
//!
//! Every finished measurement is also pushed into a process-global record;
//! when the `DDB_BENCH_JSON` environment variable names a file,
//! [`write_global_summary`] (called by `criterion_main!`) serializes all
//! per-run metrics there with the `ddb-obs` JSON writer, giving machine-
//! readable bench output with no serde.

use ddb_obs::json::Json;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement: a (group, id) cell with its per-sample
/// nanoseconds-per-iteration figures.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Iterations per sample.
    pub iters: u64,
    /// ns/iter, one entry per sample.
    pub samples_ns: Vec<f64>,
}

impl Measurement {
    /// Minimum ns/iter over the samples.
    pub fn min_ns(&self) -> f64 {
        self.samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum ns/iter over the samples.
    pub fn max_ns(&self) -> f64 {
        self.samples_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Median ns/iter over the samples.
    pub fn median_ns(&self) -> f64 {
        let mut v = self.samples_ns.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if v.is_empty() {
            return 0.0;
        }
        let mid = v.len() / 2;
        if v.len().is_multiple_of(2) {
            (v[mid - 1] + v[mid]) / 2.0
        } else {
            v[mid]
        }
    }

    /// Serialize for the `DDB_BENCH_JSON` metrics file.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("group", Json::Str(self.group.clone())),
            ("id", Json::Str(self.id.clone())),
            ("iters", Json::UInt(self.iters)),
            ("median_ns", Json::Num(self.median_ns())),
            ("min_ns", Json::Num(self.min_ns())),
            ("max_ns", Json::Num(self.max_ns())),
            (
                "samples_ns",
                Json::Arr(self.samples_ns.iter().map(|&s| Json::Num(s)).collect()),
            ),
        ])
    }
}

static GLOBAL: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

fn record_global(m: Measurement) {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).push(m);
}

/// Drain all measurements recorded so far in this process.
pub fn take_global() -> Vec<Measurement> {
    std::mem::take(&mut *GLOBAL.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Record a synthetic single-sample metric into the `DDB_BENCH_JSON`
/// summary alongside the timed measurements — for derived figures a
/// bench computes itself, like an instrumentation-overhead delta.
pub fn record_metric(group: &str, id: &str, value_ns: f64) {
    record_global(Measurement {
        group: group.to_owned(),
        id: id.to_owned(),
        iters: 1,
        samples_ns: vec![value_ns],
    });
}

/// Write the global measurement summary to the file named by the
/// `DDB_BENCH_JSON` environment variable (no-op when unset). Called by
/// `criterion_main!` after all groups finish.
pub fn write_global_summary() {
    let Ok(path) = std::env::var("DDB_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let measurements = take_global();
    // Parallel-scaling groups are only meaningful relative to the
    // hardware they ran on: record it so a 1-core container's flat
    // curve is not mistaken for a pool regression.
    let host_parallelism = std::thread::available_parallelism().map_or(0, |n| n.get() as u64);
    let doc = Json::obj([
        ("version", Json::UInt(1)),
        ("host_parallelism", Json::UInt(host_parallelism)),
        (
            "measurements",
            Json::Arr(measurements.iter().map(Measurement::to_json).collect()),
        ),
    ]);
    match std::fs::write(&path, doc.render_pretty()) {
        Ok(()) => eprintln!("wrote bench metrics to {path}"),
        Err(e) => eprintln!("failed to write bench metrics to {path}: {e}"),
    }
}

/// An opaque hint that the value is used, preventing the optimizer from
/// deleting the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark inside a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            rendered: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            rendered: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine for the configured number of iterations, timing the
    /// whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness configuration (criterion-compatible builder).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the measured samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let cfg = self.clone();
        run_one(&cfg, "", id, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a routine parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let cfg = self.criterion.clone();
        run_one(&cfg, &self.name, &id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmark an input-free routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let cfg = self.criterion.clone();
        run_one(&cfg, &self.name, id, |b| f(b));
        self
    }

    /// Finish the group (display-only in this shim).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(cfg: &Criterion, group: &str, id: &str, mut f: F) {
    // Warm up and estimate the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let mut warm_elapsed = Duration::ZERO;
    while warm_start.elapsed() < cfg.warm_up_time || warm_iters == 0 {
        f(&mut bencher);
        warm_elapsed += bencher.elapsed;
        warm_iters += 1;
    }
    let est_ns = (warm_elapsed.as_nanos() as f64 / warm_iters as f64).max(1.0);
    let budget_per_sample = cfg.measurement_time.as_nanos() as f64 / cfg.sample_size as f64;
    let iters = ((budget_per_sample / est_ns).floor() as u64).max(1);

    // Measured samples.
    let mut samples_ns = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    let m = Measurement {
        group: group.to_owned(),
        id: id.to_owned(),
        iters,
        samples_ns,
    };
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    eprintln!(
        "{label:<54} time: [{} {} {}]  ({} samples x {} iters)",
        human_ns(m.min_ns()),
        human_ns(m.median_ns()),
        human_ns(m.max_ns()),
        cfg.sample_size,
        iters
    );
    record_global(m);
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark target in this group.
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::microbench::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` for a bench binary, criterion-style. Also writes the
/// `DDB_BENCH_JSON` metrics file when that environment variable is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::microbench::write_global_summary();
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("shim-test");
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        let ms = take_global();
        let m = ms.iter().find(|m| m.group == "shim-test").unwrap();
        assert_eq!(m.samples_ns.len(), 3);
        assert!(m.min_ns() > 0.0);
        assert!(m.median_ns() >= m.min_ns());
        assert!(m.max_ns() >= m.median_ns());
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn measurement_json_has_fields() {
        let m = Measurement {
            group: "g".into(),
            id: "i".into(),
            iters: 4,
            samples_ns: vec![1.0, 3.0, 2.0],
        };
        let j = m.to_json();
        assert_eq!(j.get("group").unwrap().as_str(), Some("g"));
        assert_eq!(j.get("iters").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("median_ns").unwrap().as_f64(), Some(2.0));
        let parsed = ddb_obs::json::parse(&j.render()).unwrap();
        assert_eq!(parsed.get("max_ns").unwrap().as_f64(), Some(3.0));
    }
}
