//! Measurement plumbing: timed runs, oracle-cost capture, growth
//! classification, and report rendering.

use ddb_models::Cost;
use ddb_obs::json::Json;
use std::time::{Duration, Instant};

/// One measured point of a scaling sweep.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Instance size parameter (atoms, universal variables, …).
    pub size: usize,
    /// Wall-clock time of the decision procedure.
    pub time: Duration,
    /// Oracle usage.
    pub cost: Cost,
    /// The decision's answer (for sanity reporting).
    pub answer: bool,
}

impl Measurement {
    /// Serialize for the `tables --json` metrics file.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("size", Json::UInt(self.size as u64)),
            ("wall_ns", Json::UInt(self.time.as_nanos() as u64)),
            ("answer", Json::Bool(self.answer)),
            ("sat_calls", Json::UInt(self.cost.sat_calls)),
            ("candidates", Json::UInt(self.cost.candidates)),
            ("decisions", Json::UInt(self.cost.decisions)),
            ("conflicts", Json::UInt(self.cost.conflicts)),
            ("propagations", Json::UInt(self.cost.propagations)),
            ("peak_clauses", Json::UInt(self.cost.peak_clauses)),
        ])
    }
}

/// Runs `f` once, capturing time and cost.
pub fn measure(size: usize, f: impl FnOnce(&mut Cost) -> bool) -> Measurement {
    let _span = ddb_obs::span("bench.measure");
    let mut cost = Cost::new();
    let start = Instant::now();
    let answer = f(&mut cost);
    Measurement {
        size,
        time: start.elapsed(),
        cost,
        answer,
    }
}

/// Runs `f` over `iters` seeds and keeps the median-time measurement
/// (answers may differ across seeds; the median is by time).
pub fn measure_median(
    size: usize,
    iters: u64,
    mut f: impl FnMut(u64, &mut Cost) -> bool,
) -> Measurement {
    let mut runs: Vec<Measurement> = (0..iters)
        .map(|seed| measure(size, |cost| f(seed, cost)))
        .collect();
    runs.sort_by_key(|m| m.time);
    runs.swap_remove(runs.len() / 2)
}

/// Growth classification from per-doubling time ratios.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Growth {
    /// Essentially flat (constant-time shape).
    Constant,
    /// Bounded per-doubling ratio (polynomial shape).
    Polynomial,
    /// Super-polynomial blow-up across doublings.
    Exponential,
}

impl Growth {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Growth::Constant => "flat",
            Growth::Polynomial => "poly",
            Growth::Exponential => "exp",
        }
    }
}

/// Classifies a sweep whose sizes (roughly) double. Ratios below 1.5 ⇒
/// constant, below 10 ⇒ polynomial (degree ≲ 3), otherwise exponential.
/// Sub-microsecond timings are treated as constant (noise floor).
pub fn classify(points: &[Measurement]) -> Growth {
    if points.len() < 2 {
        return Growth::Constant;
    }
    let mut worst: f64 = 0.0;
    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let ta = a.time.as_secs_f64().max(1e-7);
        let tb = b.time.as_secs_f64().max(1e-7);
        let size_ratio = b.size as f64 / a.size.max(1) as f64;
        // Normalize the time ratio to a per-doubling figure.
        let ratio = (tb / ta).powf(1.0 / size_ratio.log2().max(0.5));
        worst = worst.max(ratio);
    }
    if points.last().map(|m| m.time < Duration::from_micros(50)) == Some(true) {
        return Growth::Constant;
    }
    if worst < 1.5 {
        Growth::Constant
    } else if worst < 10.0 {
        Growth::Polynomial
    } else {
        Growth::Exponential
    }
}

/// One cell of the regenerated table.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Semantics row label.
    pub semantics: String,
    /// Problem column: "lit" / "form" / "exist".
    pub task: &'static str,
    /// The paper's claimed complexity for this cell.
    pub paper_claim: &'static str,
    /// Measured sweep.
    pub points: Vec<Measurement>,
    /// Extra evidence (reduction verified, oracle budget, …).
    pub evidence: String,
}

impl CellReport {
    /// Serialize the cell — paper claim, measured shape, full sweep — for
    /// the `tables --json` metrics file.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("semantics", Json::Str(self.semantics.clone())),
            ("task", Json::Str(self.task.to_owned())),
            ("paper_claim", Json::Str(self.paper_claim.to_owned())),
            (
                "measured_shape",
                Json::Str(classify(&self.points).label().to_owned()),
            ),
            (
                "sweep",
                Json::Arr(self.points.iter().map(Measurement::to_json).collect()),
            ),
            ("evidence", Json::Str(self.evidence.clone())),
        ])
    }

    /// Renders the cell as a markdown table row fragment.
    pub fn render(&self) -> String {
        let shape = classify(&self.points).label();
        let sweep: Vec<String> = self
            .points
            .iter()
            .map(|m| {
                format!(
                    "n={}: {:.2?} ({} sat / {} cand)",
                    m.size, m.time, m.cost.sat_calls, m.cost.candidates
                )
            })
            .collect();
        format!(
            "| {} | {} | {} | {} | {} | {} |",
            self.semantics,
            self.task,
            self.paper_claim,
            shape,
            sweep.join("; "),
            self.evidence
        )
    }
}

/// Markdown table header matching [`CellReport::render`].
pub fn table_header() -> String {
    "| semantics | task | paper | measured shape | sweep (median) | evidence |\n|---|---|---|---|---|---|".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(size: usize, micros: u64) -> Measurement {
        Measurement {
            size,
            time: Duration::from_micros(micros),
            cost: Cost::new(),
            answer: true,
        }
    }

    #[test]
    fn classify_constant() {
        let pts = vec![fake(10, 2000), fake(20, 2100), fake(40, 2050)];
        assert_eq!(classify(&pts), Growth::Constant);
    }

    #[test]
    fn classify_polynomial() {
        // Quadratic: 4x per doubling.
        let pts = vec![fake(10, 1000), fake(20, 4000), fake(40, 16_000)];
        assert_eq!(classify(&pts), Growth::Polynomial);
    }

    #[test]
    fn classify_exponential() {
        let pts = vec![fake(10, 1000), fake(20, 1_000_000), fake(40, 1_000_000_000)];
        assert_eq!(classify(&pts), Growth::Exponential);
    }

    #[test]
    fn noise_floor_is_constant() {
        let pts = vec![fake(10, 1), fake(20, 3), fake(40, 9)];
        assert_eq!(classify(&pts), Growth::Constant);
    }

    #[test]
    fn measure_captures_cost() {
        let m = measure(5, |cost| {
            cost.candidates = 3;
            true
        });
        assert_eq!(m.size, 5);
        assert_eq!(m.cost.candidates, 3);
        assert!(m.answer);
    }

    #[test]
    fn render_contains_fields() {
        let cell = CellReport {
            semantics: "GCWA".into(),
            task: "lit",
            paper_claim: "Πᵖ₂-complete",
            points: vec![fake(10, 100)],
            evidence: "reduction verified".into(),
        };
        let row = cell.render();
        assert!(row.contains("GCWA") && row.contains("lit") && row.contains("Πᵖ₂"));
    }
}
