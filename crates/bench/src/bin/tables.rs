//! Regenerates Tables 1 and 2 of Eiter & Gottlob (PODS 1993) as
//! paper-claim vs. measured-shape reports.
//!
//! For every (semantics, problem) cell the binary runs the implemented
//! decision procedure over a scaling instance family, reporting median
//! wall-clock time, NP-oracle calls and CEGAR candidate counts, plus the
//! lower-bound evidence (verified reductions, QBF hard-family scaling).
//!
//! ```text
//! cargo run -p ddb-bench --bin tables --release
//! ```

use ddb_bench::families;
use ddb_bench::harness::{measure_median, table_header, CellReport, Measurement};
use ddb_core::{SemanticsConfig, SemanticsId};
use ddb_logic::Database;
use ddb_models::Cost;
use ddb_reductions::qbf::random_forall_exists;
use ddb_reductions::{dsm_hardness, gcwa_hardness, sat_reductions, uminsat};
use ddb_workloads::queries;

const SEEDS: u64 = 5;

/// Which problem a sweep measures.
#[derive(Clone, Copy)]
enum Task {
    Lit,
    Form,
    Exist,
}

impl Task {
    fn label(self) -> &'static str {
        match self {
            Task::Lit => "lit",
            Task::Form => "form",
            Task::Exist => "exist",
        }
    }
}

fn run_task(cfg: &SemanticsConfig, db: &Database, task: Task, seed: u64, cost: &mut Cost) -> bool {
    match task {
        Task::Lit => {
            let lit = queries::random_literal(db.num_atoms(), seed);
            cfg.infers_literal(db, lit, cost)
                .ok()
                .and_then(|v| v.as_bool())
                .unwrap_or(false)
        }
        Task::Form => {
            let f = queries::random_formula(db.num_atoms(), 6, seed);
            cfg.infers_formula(db, &f, cost)
                .ok()
                .and_then(|v| v.as_bool())
                .unwrap_or(false)
        }
        Task::Exist => cfg
            .has_model(db, cost)
            .ok()
            .and_then(|v| v.as_bool())
            .unwrap_or(false),
    }
}

fn sweep(
    id: SemanticsId,
    task: Task,
    sizes: &[usize],
    family: impl Fn(usize, u64) -> Database,
) -> Vec<Measurement> {
    let cfg = SemanticsConfig::new(id);
    sizes
        .iter()
        .map(|&n| {
            measure_median(n, SEEDS, |seed, cost| {
                let db = family(n, seed);
                run_task(&cfg, &db, task, seed.wrapping_add(1000), cost)
            })
        })
        .collect()
}

fn cell(
    id: SemanticsId,
    task: Task,
    paper: &'static str,
    sizes: &[usize],
    family: impl Fn(usize, u64) -> Database,
    evidence: &str,
) -> CellReport {
    CellReport {
        semantics: id.name().to_owned(),
        task: task.label(),
        paper_claim: paper,
        points: sweep(id, task, sizes, family),
        evidence: evidence.to_owned(),
    }
}

/// Sizes per cost tier: procedures with enumerative loops get smaller
/// sweeps so the whole report finishes in minutes.
const FAST: &[usize] = &[16, 32, 64, 128];
const MID: &[usize] = &[8, 16, 32, 64];
const SLOW: &[usize] = &[6, 8, 12, 16];
const PDSM_SIZES: &[usize] = &[4, 6, 8, 10];

fn table1(cells: &mut Vec<CellReport>) {
    println!("\n## Table 1 — positive propositional DDBs (no integrity clauses, no negation)\n");
    println!("{}", table_header());
    use SemanticsId::*;
    use Task::*;
    let pos = |n: usize, s: u64| families::table1_random(n, s);

    for (id, lit_claim, form_claim, sizes) in [
        (Gcwa, "Πᵖ₂-complete", "Πᵖ₂-hard, in Δᵖ₃[O(log n)]", MID),
        (Ddr, "in P *(Chan [5])*", "coNP-complete", FAST),
        (Pws, "in P *(Chan [5])*", "coNP-complete", FAST),
        (Egcwa, "Πᵖ₂-complete", "Πᵖ₂-complete", MID),
        (
            Ccwa,
            "Πᵖ₂-hard, in Δᵖ₃[O(log n)]",
            "Πᵖ₂-hard, in Δᵖ₃[O(log n)]",
            MID,
        ),
        (Ecwa, "Πᵖ₂-complete", "Πᵖ₂-complete", MID),
        (Icwa, "Πᵖ₂-complete", "Πᵖ₂-complete", SLOW),
        (Perf, "Πᵖ₂-complete", "Πᵖ₂-complete", SLOW),
        (Dsm, "Πᵖ₂-complete", "Πᵖ₂-complete", SLOW),
        (Pdsm, "Πᵖ₂-complete", "Πᵖ₂-complete", PDSM_SIZES),
    ] {
        let ev_lit = match id {
            Ddr | Pws => "0 oracle calls on the fast path",
            Gcwa | Egcwa | Ecwa | Icwa | Perf | Dsm | Pdsm => {
                "hardness via verified 2QBF reduction (see lower-bounds section)"
            }
            _ => "",
        };
        emit(cells, cell(id, Lit, lit_claim, sizes, pos, ev_lit));
        emit(cells, cell(id, Form, form_claim, sizes, pos, ""));
        emit(
            cells,
            cell(
                id,
                Exist,
                "O(1) (positive DBs always have models)",
                sizes,
                pos,
                "expected flat/trivial",
            ),
        );
    }
}

fn table2(cells: &mut Vec<CellReport>) {
    println!("\n## Table 2 — propositional DDBs with integrity clauses\n");
    println!("{}", table_header());
    use SemanticsId::*;
    use Task::*;
    let ded = |n: usize, s: u64| families::table2_random(n, s);
    let strat = |n: usize, s: u64| families::stratified_random(n, s);
    let norm = |n: usize, s: u64| families::normal_random(n, s);

    for (id, lit_claim, form_claim, exist_claim, sizes) in [
        (
            Gcwa,
            "Πᵖ₂-complete",
            "Πᵖ₂-hard, in Δᵖ₃[O(log n)]",
            "NP-complete (≡ SAT)",
            MID,
        ),
        (
            Ddr,
            "coNP-complete *(Chan [5])*",
            "coNP-complete",
            "NP-complete (≡ SAT of DB ∪ ¬N)",
            FAST,
        ),
        (
            Pws,
            "coNP-complete *(Chan [5])*",
            "coNP-complete",
            "NP-complete (possible-model SAT)",
            FAST,
        ),
        (Egcwa, "Πᵖ₂-complete", "Πᵖ₂-complete", "NP-complete", MID),
        (
            Ccwa,
            "Πᵖ₂-hard, in Δᵖ₃[O(log n)]",
            "Πᵖ₂-hard, in Δᵖ₃[O(log n)]",
            "NP-complete (≡ SAT)",
            MID,
        ),
        (Ecwa, "Πᵖ₂-complete", "Πᵖ₂-complete", "NP-complete", MID),
    ] {
        emit(cells, cell(id, Lit, lit_claim, sizes, ded, ""));
        emit(cells, cell(id, Form, form_claim, sizes, ded, ""));
        emit(cells, cell(id, Exist, exist_claim, sizes, ded, ""));
    }
    // Stratified / normal rows.
    emit(cells, cell(Icwa, Lit, "Πᵖ₂-complete", SLOW, strat, ""));
    emit(cells, cell(Icwa, Form, "Πᵖ₂-complete", SLOW, strat, ""));
    emit(
        cells,
        cell(
            Icwa,
            Exist,
            "O(1) (stratifiability asserts consistency)",
            SLOW,
            |n, s| {
                // Integrity-free stratified family: the O(1) path.
                let mut db = families::stratified_random(n, s);
                let rules: Vec<_> = db
                    .rules()
                    .iter()
                    .filter(|r| !r.is_integrity())
                    .cloned()
                    .collect();
                let mut clean = Database::new(db.symbols().clone());
                for r in rules {
                    clean.add_rule(r);
                }
                std::mem::swap(&mut db, &mut clean);
                db
            },
            "expected flat, 0 oracle calls",
        ),
    );
    for id in [Perf, Dsm] {
        emit(cells, cell(id, Lit, "Πᵖ₂-complete", SLOW, norm, ""));
        emit(cells, cell(id, Form, "Πᵖ₂-complete", SLOW, norm, ""));
        emit(cells, cell(id, Exist, "Σᵖ₂-complete", SLOW, norm, ""));
    }
    emit(cells, cell(Pdsm, Lit, "Πᵖ₂-complete", PDSM_SIZES, norm, ""));
    emit(
        cells,
        cell(Pdsm, Form, "Πᵖ₂-complete", PDSM_SIZES, norm, ""),
    );
    emit(
        cells,
        cell(Pdsm, Exist, "Σᵖ₂-complete", PDSM_SIZES, norm, ""),
    );

    // NP-complete existence on the intended hard family.
    emit(
        cells,
        cell(
            Egcwa,
            Exist,
            "NP-complete — phase-transition 3-CNF family",
            &[40, 80, 120, 160],
            families::phase_transition,
            "CDCL oracle at clause/var ratio 4.26",
        ),
    );
}

fn lower_bounds() {
    println!("\n## Lower-bound evidence (verified reductions + hard-family scaling)\n");

    // 1. 2QBF → minimal-model literal inference: verify on random
    //    instances, then scale the universal count.
    let mut agree = 0;
    let total = 40;
    for seed in 0..total {
        let q = random_forall_exists(2, 2, 6, 3, seed);
        let inst = gcwa_hardness::forall_exists_to_gcwa(&q);
        let mut cost = Cost::new();
        let inferred = ddb_core::gcwa::infers_literal(&inst.db, inst.w.neg(), &mut cost).unwrap();
        if inferred == q.valid_brute() {
            agree += 1;
        }
    }
    println!(
        "- 2QBF(∀∃-CNF) → GCWA ⊨ ¬w on positive, integrity-free DDBs: \
         {agree}/{total} random instances agree with brute-force QBF evaluation."
    );
    print!("- GCWA literal inference on the *valid parity* hard family (worst case, time by #universals): ");
    for nx in [2u32, 3, 4, 5, 6] {
        let m = measure_median(nx as usize, 3, |_seed, cost| {
            let inst = families::qbf_parity_hard(nx);
            ddb_core::gcwa::infers_literal(&inst.db, inst.w.neg(), cost).unwrap()
        });
        print!("nx={nx}: {:.2?} ({} cand)  ", m.time, m.cost.candidates);
    }
    println!();
    print!("- Same cell on *random* QBF instances (average case — CEGAR refutes quickly): ");
    for nx in [2u32, 4, 6, 8, 10] {
        let m = measure_median(nx as usize, 3, |seed, cost| {
            let inst = families::qbf_hard(nx, 4, seed);
            ddb_core::gcwa::infers_literal(&inst.db, inst.w.neg(), cost).unwrap()
        });
        print!("nx={nx}: {:.2?} ({} cand)  ", m.time, m.cost.candidates);
    }
    println!();

    // 2. 2QBF(∃∀) → DSM existence.
    let mut agree = 0;
    for seed in 0..total {
        let q = random_forall_exists(2, 2, 6, 3, seed).complement();
        let inst = dsm_hardness::exists_forall_to_dsm_existence(&q);
        let mut cost = Cost::new();
        if ddb_core::dsm::has_model(&inst.db, &mut cost).unwrap() == q.true_brute() {
            agree += 1;
        }
    }
    println!("- 2QBF(∃∀-DNF) → DSM model existence: {agree}/{total} random instances agree.");
    print!("- DSM existence on the *false parity* hard family (must exhaust all outer choices): ");
    for nx in [2u32, 3, 4, 5, 6] {
        let m = measure_median(nx as usize, 3, |_seed, cost| {
            let db = families::dsm_exist_hard(nx);
            ddb_core::dsm::has_model(&db, cost).unwrap()
        });
        print!(
            "nx={nx}: {:.2?} ({} sat, answer {})  ",
            m.time, m.cost.sat_calls, m.answer
        );
    }
    println!();

    // PERF existence exhaustion family: k even loops with mutually strict
    // priorities have no perfect model; the search must refute all 2^k
    // minimal models.
    print!("- PERF existence on even-loop batteries (no perfect model exists): ");
    for k in [2usize, 4, 6, 8] {
        let m = measure_median(k, 3, |_seed, cost| {
            let db = families::even_loops(k);
            ddb_core::perf::has_model(&db, cost).unwrap()
        });
        print!(
            "k={k}: {:.2?} ({} sat, answer {})  ",
            m.time, m.cost.sat_calls, m.answer
        );
    }
    println!();

    // 3. SAT ⇔ EGCWA existence with integrity clauses.
    let mut agree = 0;
    for seed in 0..total {
        let cnf: Vec<Vec<(u32, bool)>> = {
            let q = random_forall_exists(0, 5, 10, 3, seed);
            q.clauses
        };
        let db = sat_reductions::cnf_to_deductive_db(5, &cnf);
        let mut cost = Cost::new();
        let brute = (0u64..1 << 5).any(|bits| {
            cnf.iter()
                .all(|c| c.iter().any(|&(v, s)| (bits >> v & 1 == 1) == s))
        });
        if ddb_core::egcwa::has_model(&db, &mut cost).unwrap() == brute {
            agree += 1;
        }
    }
    println!("- SAT → EGCWA model existence (deductive DBs): {agree}/{total} agree.");

    // 4. UNSAT → UMINSAT (Proposition 5.4).
    let mut agree = 0;
    for seed in 0..total {
        let cnf = random_forall_exists(0, 4, 8, 2, seed).clauses;
        let db = uminsat::unsat_to_uminsat(4, &cnf);
        let mut cost = Cost::new();
        let brute_unsat = !(0u64..1 << 4).any(|bits| {
            cnf.iter()
                .all(|c| c.iter().any(|&(v, s)| (bits >> v & 1 == 1) == s))
        });
        if uminsat::has_unique_minimal_model(&db, &mut cost).unwrap() == brute_unsat {
            agree += 1;
        }
    }
    println!("- UNSAT → UMINSAT (unique minimal model): {agree}/{total} agree.");

    // 5. The tractable cells: DDR negative-literal inference scaling with
    //    zero oracle calls.
    print!("- DDR ¬-literal inference on Horn chains (P cell, Table 1): ");
    for n in [1_000usize, 10_000, 100_000] {
        let m = measure_median(n, 3, |_seed, cost| {
            let db = families::tractable_chain(n);
            let lit = ddb_logic::Atom::new((n - 1) as u32).neg();
            ddb_core::ddr::infers_literal(&db, lit, cost).unwrap()
        });
        print!("n={n}: {:.2?} ({} sat)  ", m.time, m.cost.sat_calls);
    }
    println!();
}

fn beyond_the_paper() {
    println!("\n## Beyond the paper — extension semantics (measured shapes)\n");

    // Reiter's CWA: |V| coNP queries + one SAT call; inconsistent on
    // disjunctions.
    print!("- CWA consistency (n+1 oracle calls by construction): ");
    for n in [16usize, 32, 64] {
        let m = measure_median(n, SEEDS, |seed, cost| {
            let db = families::table1_random(n, seed);
            ddb_core::cwa::is_consistent(&db, cost).unwrap()
        });
        print!("n={n}: {:.2?} ({} sat)  ", m.time, m.cost.sat_calls);
    }
    println!();

    // WFS: polynomial, zero oracle calls.
    print!("- WFS (alternating fixpoint — O(n²) on an n-stratum chain, 0 oracle calls): ");
    for n in [500usize, 1_000, 2_000] {
        let m = measure_median(n, 3, |_seed, cost| {
            // Negation chain: n atoms, n rules, stratified.
            let mut src = String::from("x0.");
            for i in 1..n {
                src.push_str(&format!(" x{i} :- not x{}.", i - 1));
            }
            let db = ddb_logic::parse::parse_program(&src).unwrap();
            let w = ddb_core::wfs::well_founded_model(&db);
            let _ = cost;
            w.is_total()
        });
        print!("n={n}: {:.2?}  ", m.time);
    }
    println!("(includes parse time)");

    // Supported models: one SAT call per query (NP/coNP shape).
    print!("- Supported-model existence (1 SAT call on the completion): ");
    for n in [32usize, 64, 128] {
        let m = measure_median(n, SEEDS, |seed, cost| {
            // Normal random program: singleton heads.
            let raw = families::normal_random(n, seed);
            let mut db = ddb_logic::Database::new(raw.symbols().clone());
            for r in raw.rules() {
                let head: Vec<_> = r.head().iter().take(1).copied().collect();
                db.add_rule(ddb_logic::Rule::new(
                    head,
                    r.body_pos().iter().copied(),
                    r.body_neg().iter().copied(),
                ));
            }
            ddb_core::supported::has_model(&db, cost).unwrap()
        });
        print!("n={n}: {:.2?} ({} sat)  ", m.time, m.cost.sat_calls);
    }
    println!();

    // Grounding: reduced vs full sizes on a transitive-closure program.
    print!("- Datalog∨ grounding (reduced vs full ground rules, chain graphs): ");
    for k in [10usize, 20, 40] {
        let mut src = String::new();
        for i in 0..k - 1 {
            src.push_str(&format!("edge(v{i},v{}). ", i + 1));
        }
        src.push_str("path(X,Y) :- edge(X,Y). path(X,Y) :- edge(X,Z), path(Z,Y).");
        let prog = ddb_ground::parse::parse_datalog(&src).unwrap();
        let reduced = ddb_ground::ground_reduced(&prog, 1_000_000).unwrap();
        let full = ddb_ground::ground_full(&prog, 1_000_000).unwrap();
        print!("k={k}: {} vs {}  ", reduced.len(), full.len());
    }
    println!();
}

/// Prints the cell row and keeps the report for the `--json` summary.
fn emit(cells: &mut Vec<CellReport>, c: CellReport) {
    println!("{}", c.render());
    cells.push(c);
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => json_path = argv.next(),
            other => {
                eprintln!("unknown argument: {other} (usage: tables [--json <file>])");
                std::process::exit(2);
            }
        }
    }
    println!("# Tables 1 & 2 of Eiter & Gottlob (PODS 1993), regenerated\n");
    println!(
        "Every cell: paper claim | measured growth shape over the sweep | \
         median wall-clock + oracle accounting (sat calls / CEGAR candidates)."
    );
    let mut cells = Vec::new();
    table1(&mut cells);
    table2(&mut cells);
    lower_bounds();
    beyond_the_paper();
    if let Some(path) = json_path {
        use ddb_obs::json::Json;
        let doc = Json::obj([
            ("version", Json::UInt(1)),
            (
                "cells",
                Json::Arr(cells.iter().map(CellReport::to_json).collect()),
            ),
        ]);
        match std::fs::write(&path, doc.render_pretty()) {
            Ok(()) => eprintln!("wrote cell metrics to {path}"),
            Err(e) => eprintln!("failed to write cell metrics to {path}: {e}"),
        }
    }
}
