//! # ddb-bench — the experiment harness behind Tables 1 and 2
//!
//! The paper's evaluation artifacts are two complexity matrices. This
//! crate makes every cell *measurable*:
//!
//! * [`families`] — one scaling instance family per table cell (positive
//!   random databases for Table 1, integrity-clause families for Table 2,
//!   QBF-derived hard families for the Πᵖ₂/Σᵖ₂ lower bounds, Horn chains
//!   for the tractable cells, phase-transition CNFs for the NP cells);
//! * [`harness`] — measurement plumbing: timed runs with oracle-cost
//!   capture, growth-shape classification (per-doubling time ratios), and
//!   the row/cell report structures the `tables` binary prints;
//! * [`microbench`] — the zero-dependency criterion-compatible shim
//!   the bench binaries run on (offline build, no external crates);
//! * `benches/` — benchmark groups, one per table row, plus the ablations
//!   called out in DESIGN.md (CDCL vs DPLL oracle, direct vs census GCWA,
//!   explicit fixpoint vs active-atom closure).
//!
//! Run `cargo run -p ddb-bench --bin tables --release` to regenerate the
//! paper-vs-measured report recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod harness;
pub mod microbench;
