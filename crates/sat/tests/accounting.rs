//! Accounting invariants for solver statistics — the contract the
//! observability layer depends on: `solves` increments exactly once per
//! `solve*` call, `propagations >= decisions` on satisfiable instances,
//! `reset_stats` zeroes event counts, and `Stats: AddAssign` aggregates
//! totals while taking maxima of gauges.

use ddb_logic::cnf::CnfBuilder;
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Literal};
use ddb_sat::{SolveResult, Solver, Stats};

fn lit(i: u32, pos: bool) -> Literal {
    Literal::with_sign(Atom::new(i), pos)
}

/// A small satisfiable chain a→b→…; forces propagation work.
fn chain_solver(n: u32) -> Solver {
    let mut b = CnfBuilder::new(n as usize);
    b.add_clause(vec![lit(0, true)]);
    for i in 0..n - 1 {
        b.add_clause(vec![lit(i, false), lit(i + 1, true)]);
    }
    Solver::from_cnf(&b.finish())
}

#[test]
fn solves_increments_exactly_once_per_call() {
    let mut s = chain_solver(6);
    assert_eq!(s.stats().solves, 0);
    for expected in 1..=5u64 {
        s.solve().unwrap();
        assert_eq!(s.stats().solves, expected);
    }
    // Assumption-based calls count identically — including ones that
    // return early through the conflicting-assumptions path.
    s.solve_with_assumptions(&[lit(3, true)]).unwrap();
    assert_eq!(s.stats().solves, 6);
    s.solve_with_assumptions(&[lit(0, false)]).unwrap(); // contradicts the unit fact
    assert_eq!(s.stats().solves, 7);
}

#[test]
fn solves_counts_calls_on_unsat_instances_too() {
    let mut b = CnfBuilder::new(1);
    b.add_clause(vec![lit(0, true)]);
    b.add_clause(vec![lit(0, false)]);
    let mut s = Solver::from_cnf(&b.finish());
    assert_eq!(s.solve().unwrap(), SolveResult::Unsat);
    assert_eq!(s.solve().unwrap(), SolveResult::Unsat); // early-return path
    assert_eq!(s.stats().solves, 2);
}

#[test]
fn propagations_at_least_decisions_on_sat_instances() {
    let mut rng = XorShift64Star::seed_from_u64(0xACC1);
    let mut sat_seen = 0;
    for case in 0..200 {
        let mut b = CnfBuilder::new(8);
        for _ in 0..rng.gen_range(1, 25) {
            let c: Vec<Literal> = (0..rng.gen_range_inclusive(1, 4))
                .map(|_| lit(rng.gen_range(0, 8) as u32, rng.gen_bool(0.5)))
                .collect();
            b.add_clause(c);
        }
        let mut s = Solver::from_cnf(&b.finish());
        if s.solve().unwrap().is_sat() {
            sat_seen += 1;
            let st = s.stats();
            // Every decision is enqueued onto the trail and then
            // propagated, so propagations dominate decisions.
            assert!(
                st.propagations >= st.decisions,
                "case {case}: propagations {} < decisions {}",
                st.propagations,
                st.decisions
            );
        }
    }
    assert!(
        sat_seen > 50,
        "workload too easy: only {sat_seen} sat cases"
    );
}

#[test]
fn reset_stats_zeroes_event_counts_and_keeps_solver_usable() {
    let mut s = chain_solver(8);
    assert!(s.solve().unwrap().is_sat());
    assert!(s.stats().solves > 0);
    assert!(s.stats().propagations > 0);
    s.reset_stats();
    let st = s.stats();
    assert_eq!(st.solves, 0);
    assert_eq!(st.decisions, 0);
    assert_eq!(st.propagations, 0);
    assert_eq!(st.conflicts, 0);
    assert_eq!(st.restarts, 0);
    // The solver still works, and accounting restarts from zero.
    assert!(s.solve().unwrap().is_sat());
    assert_eq!(s.stats().solves, 1);
}

#[test]
fn reset_stats_reseeds_clause_gauge_from_live_state() {
    // An implication cycle with no unit facts: nothing simplifies away at
    // level 0, so all 8 binary clauses stay resident in the solver.
    let mut b = CnfBuilder::new(8);
    for i in 0..8u32 {
        b.add_clause(vec![lit(i, false), lit((i + 1) % 8, true)]);
    }
    let mut s = Solver::from_cnf(&b.finish());
    s.solve().unwrap();
    s.reset_stats();
    // The clause high-water mark reflects clauses actually held right now,
    // not zero — a gauge must stay truthful across resets.
    assert!(s.stats().max_clauses >= 8);
}

#[test]
fn add_assign_sums_totals_and_maxes_gauges() {
    let a = Stats {
        solves: 2,
        decisions: 10,
        propagations: 30,
        conflicts: 4,
        learnts: 7,
        restarts: 1,
        minimized_literals: 5,
        max_clauses: 100,
    };
    let b = Stats {
        solves: 3,
        decisions: 1,
        propagations: 2,
        conflicts: 0,
        learnts: 9,
        restarts: 0,
        minimized_literals: 1,
        max_clauses: 40,
    };
    let mut sum = a;
    sum += b;
    assert_eq!(sum.solves, 5);
    assert_eq!(sum.decisions, 11);
    assert_eq!(sum.propagations, 32);
    assert_eq!(sum.conflicts, 4);
    assert_eq!(sum.restarts, 1);
    assert_eq!(sum.minimized_literals, 6);
    assert_eq!(sum.learnts, 9, "gauge takes max");
    assert_eq!(sum.max_clauses, 100, "gauge takes max");
}

#[test]
fn add_assign_identity_is_default() {
    let mut s = chain_solver(5);
    s.solve().unwrap();
    let observed = s.stats();
    let mut sum = Stats::default();
    sum += observed;
    assert_eq!(format!("{observed:?}"), format!("{sum:?}"));
}

#[test]
fn solver_reports_oracle_calls_to_obs_counters() {
    let before = ddb_obs::snapshot();
    let mut s = chain_solver(6);
    s.solve().unwrap();
    s.solve().unwrap();
    let spent = ddb_obs::snapshot().diff(&before);
    assert!(spent.get("sat.solves") >= 2);
    assert!(spent.get("sat.propagations") >= spent.get("sat.decisions"));
    assert!(ddb_obs::counter_value("sat.clauses.peak") >= 6);
}
