//! Property-based cross-checks of the CDCL solver against the DPLL
//! reference solver and a brute-force truth-table evaluator.

use ddb_logic::cnf::{Cnf, CnfBuilder};
use ddb_logic::{Atom, Interpretation, Literal};
use ddb_sat::{dpll, enumerate_models, Solver};
use proptest::prelude::*;

/// Random CNF: up to 8 variables, up to 30 clauses of 1–4 literals.
fn arb_cnf() -> impl Strategy<Value = Cnf> {
    let clause = proptest::collection::vec((0u32..8, any::<bool>()), 1..=4);
    proptest::collection::vec(clause, 0..30).prop_map(|clauses| {
        let mut b = CnfBuilder::new(8);
        for c in clauses {
            b.add_clause(
                c.into_iter()
                    .map(|(v, s)| Literal::with_sign(Atom::new(v), s))
                    .collect(),
            );
        }
        b.finish()
    })
}

fn brute_force_models(cnf: &Cnf) -> Vec<Interpretation> {
    let n = cnf.num_vars;
    assert!(n <= 16);
    let mut out = Vec::new();
    for bits in 0u64..1 << n {
        let m = Interpretation::from_atoms(
            n,
            (0..n)
                .filter(|&i| bits >> i & 1 == 1)
                .map(|i| Atom::new(i as u32)),
        );
        if cnf.satisfied_by(&m) {
            out.push(m);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn cdcl_agrees_with_brute_force(cnf in arb_cnf()) {
        let expected = !brute_force_models(&cnf).is_empty();
        let mut solver = Solver::from_cnf(&cnf);
        let got = solver.solve().is_sat();
        prop_assert_eq!(got, expected);
        if got {
            // The reported model must actually satisfy the formula.
            prop_assert!(cnf.satisfied_by(&solver.model()));
        }
    }

    #[test]
    fn cdcl_agrees_with_dpll(cnf in arb_cnf()) {
        let mut solver = Solver::from_cnf(&cnf);
        prop_assert_eq!(solver.solve().is_sat(), dpll::is_sat(&cnf));
    }

    #[test]
    fn enumeration_finds_exactly_the_models(cnf in arb_cnf()) {
        let expected = brute_force_models(&cnf);
        let mut got = Vec::new();
        enumerate_models(&cnf, cnf.num_vars, |m| {
            got.push(m.clone());
            true
        });
        got.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn assumptions_equal_added_units(cnf in arb_cnf(), assum in proptest::collection::vec((0u32..8, any::<bool>()), 0..4)) {
        let assumptions: Vec<Literal> = assum
            .into_iter()
            .map(|(v, s)| Literal::with_sign(Atom::new(v), s))
            .collect();
        // Solving under assumptions must match solving the CNF with the
        // assumptions added as unit clauses.
        let mut incremental = Solver::from_cnf(&cnf);
        let got = incremental.solve_with_assumptions(&assumptions).is_sat();

        let mut b = CnfBuilder::new(cnf.num_vars);
        for c in &cnf.clauses {
            b.add_clause(c.clone());
        }
        for &l in &assumptions {
            b.add_clause(vec![l]);
        }
        let expected = dpll::is_sat(&b.finish());
        prop_assert_eq!(got, expected);

        // And the solver must remain correct afterwards (no state leak).
        let base = incremental.solve().is_sat();
        prop_assert_eq!(base, dpll::is_sat(&cnf));
    }

    #[test]
    fn repeated_solves_are_stable(cnf in arb_cnf()) {
        let mut solver = Solver::from_cnf(&cnf);
        let first = solver.solve().is_sat();
        for _ in 0..3 {
            prop_assert_eq!(solver.solve().is_sat(), first);
        }
    }
}

#[test]
fn hard_random_3sat_near_phase_transition() {
    // Deterministic pseudo-random 3-SAT at clause/var ratio 4.26 with 60
    // vars: exercises learning, restarts and reduction. We only check that
    // CDCL and DPLL agree (both answers are plausible near the transition).
    let mut state = 0x243F6A8885A308D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..5 {
        let n = 40;
        let m = (n as f64 * 4.26) as usize;
        let mut b = CnfBuilder::new(n);
        for _ in 0..m {
            let mut lits = Vec::with_capacity(3);
            for _ in 0..3 {
                let v = (next() % n as u64) as u32;
                let s = next() % 2 == 0;
                lits.push(Literal::with_sign(Atom::new(v), s));
            }
            b.add_clause(lits);
        }
        let cnf = b.finish();
        let mut solver = Solver::from_cnf(&cnf);
        let cdcl = solver.solve().is_sat();
        let reference = dpll::is_sat(&cnf);
        assert_eq!(cdcl, reference, "round {round}");
        if cdcl {
            assert!(cnf.satisfied_by(&solver.model()), "round {round}");
        }
    }
}
