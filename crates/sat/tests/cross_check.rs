//! Randomized cross-checks of the CDCL solver against the DPLL reference
//! solver and a brute-force truth-table evaluator, driven by the in-repo
//! deterministic PRNG (formerly proptest properties).

use ddb_logic::cnf::{Cnf, CnfBuilder};
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Interpretation, Literal};
use ddb_sat::{dpll, enumerate_models, Solver};

/// Random CNF: up to 8 variables, up to 30 clauses of 1–4 literals.
fn random_cnf(rng: &mut XorShift64Star) -> Cnf {
    let mut b = CnfBuilder::new(8);
    for _ in 0..rng.gen_range(0, 30) {
        let c: Vec<Literal> = (0..rng.gen_range_inclusive(1, 4))
            .map(|_| Literal::with_sign(Atom::new(rng.gen_range(0, 8) as u32), rng.gen_bool(0.5)))
            .collect();
        b.add_clause(c);
    }
    b.finish()
}

fn brute_force_models(cnf: &Cnf) -> Vec<Interpretation> {
    let n = cnf.num_vars;
    assert!(n <= 16);
    let mut out = Vec::new();
    for bits in 0u64..1 << n {
        let m = Interpretation::from_atoms(
            n,
            (0..n)
                .filter(|&i| bits >> i & 1 == 1)
                .map(|i| Atom::new(i as u32)),
        );
        if cnf.satisfied_by(&m) {
            out.push(m);
        }
    }
    out
}

#[test]
fn cdcl_agrees_with_brute_force() {
    let mut rng = XorShift64Star::seed_from_u64(0xC0C1);
    for case in 0..300 {
        let cnf = random_cnf(&mut rng);
        let expected = !brute_force_models(&cnf).is_empty();
        let mut solver = Solver::from_cnf(&cnf);
        let got = solver.solve().unwrap().is_sat();
        assert_eq!(got, expected, "case {case}");
        if got {
            // The reported model must actually satisfy the formula.
            assert!(cnf.satisfied_by(&solver.model()), "case {case}");
        }
    }
}

#[test]
fn cdcl_agrees_with_dpll() {
    let mut rng = XorShift64Star::seed_from_u64(0xC0C2);
    for case in 0..300 {
        let cnf = random_cnf(&mut rng);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(
            solver.solve().unwrap().is_sat(),
            dpll::is_sat(&cnf).unwrap(),
            "case {case}"
        );
    }
}

#[test]
fn enumeration_finds_exactly_the_models() {
    let mut rng = XorShift64Star::seed_from_u64(0xC0C3);
    for case in 0..300 {
        let cnf = random_cnf(&mut rng);
        let expected = brute_force_models(&cnf);
        let mut got = Vec::new();
        enumerate_models(&cnf, cnf.num_vars, |m| {
            got.push(m.clone());
            true
        })
        .unwrap();
        got.sort();
        assert_eq!(got, expected, "case {case}");
    }
}

#[test]
fn assumptions_equal_added_units() {
    let mut rng = XorShift64Star::seed_from_u64(0xC0C4);
    for case in 0..300 {
        let cnf = random_cnf(&mut rng);
        let assumptions: Vec<Literal> = (0..rng.gen_range(0, 4))
            .map(|_| Literal::with_sign(Atom::new(rng.gen_range(0, 8) as u32), rng.gen_bool(0.5)))
            .collect();
        // Solving under assumptions must match solving the CNF with the
        // assumptions added as unit clauses.
        let mut incremental = Solver::from_cnf(&cnf);
        let got = incremental
            .solve_with_assumptions(&assumptions)
            .unwrap()
            .is_sat();

        let mut b = CnfBuilder::new(cnf.num_vars);
        for c in &cnf.clauses {
            b.add_clause(c.clone());
        }
        for &l in &assumptions {
            b.add_clause(vec![l]);
        }
        let expected = dpll::is_sat(&b.finish()).unwrap();
        assert_eq!(got, expected, "case {case}");

        // And the solver must remain correct afterwards (no state leak).
        let base = incremental.solve().unwrap().is_sat();
        assert_eq!(base, dpll::is_sat(&cnf).unwrap(), "case {case}");
    }
}

#[test]
fn repeated_solves_are_stable() {
    let mut rng = XorShift64Star::seed_from_u64(0xC0C5);
    for case in 0..300 {
        let cnf = random_cnf(&mut rng);
        let mut solver = Solver::from_cnf(&cnf);
        let first = solver.solve().unwrap().is_sat();
        for _ in 0..3 {
            assert_eq!(solver.solve().unwrap().is_sat(), first, "case {case}");
        }
    }
}

#[test]
fn hard_random_3sat_near_phase_transition() {
    // Deterministic pseudo-random 3-SAT at clause/var ratio 4.26 with 60
    // vars: exercises learning, restarts and reduction. We only check that
    // CDCL and DPLL agree (both answers are plausible near the transition).
    let mut state = 0x243F6A8885A308D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..5 {
        let n = 40;
        let m = (n as f64 * 4.26) as usize;
        let mut b = CnfBuilder::new(n);
        for _ in 0..m {
            let mut lits = Vec::with_capacity(3);
            for _ in 0..3 {
                let v = (next() % n as u64) as u32;
                let s = next() % 2 == 0;
                lits.push(Literal::with_sign(Atom::new(v), s));
            }
            b.add_clause(lits);
        }
        let cnf = b.finish();
        let mut solver = Solver::from_cnf(&cnf);
        let cdcl = solver.solve().unwrap().is_sat();
        let reference = dpll::is_sat(&cnf).unwrap();
        assert_eq!(cdcl, reference, "round {round}");
        if cdcl {
            assert!(cnf.satisfied_by(&solver.model()), "round {round}");
        }
    }
}
