//! Robustness properties of the CDCL solver: answers must be invariant
//! under clause reordering, literal reordering, duplication, and the
//! clause-minimization switch.

use ddb_logic::cnf::{Cnf, CnfBuilder};
use ddb_logic::{Atom, Literal};
use ddb_sat::{dpll, Solver};
use proptest::prelude::*;

fn arb_cnf_and_perm() -> impl Strategy<Value = (Cnf, Vec<usize>)> {
    let clause = proptest::collection::vec((0u32..7, any::<bool>()), 1..=4);
    proptest::collection::vec(clause, 1..20)
        .prop_flat_map(|clauses| {
            let len = clauses.len();
            (
                Just(clauses),
                proptest::collection::vec(0usize..len.max(1), len),
            )
        })
        .prop_map(|(clauses, perm_seed)| {
            let mut b = CnfBuilder::new(7);
            for c in &clauses {
                b.add_clause(
                    c.iter()
                        .map(|&(v, s)| Literal::with_sign(Atom::new(v), s))
                        .collect(),
                );
            }
            (b.finish(), perm_seed)
        })
}

fn permuted(cnf: &Cnf, seed: &[usize]) -> Cnf {
    // Deterministic pseudo-shuffle driven by the seed values.
    let mut clauses = cnf.clauses.clone();
    let len = clauses.len();
    for (i, &s) in seed.iter().enumerate() {
        clauses.swap(i % len, s % len);
    }
    // Also rotate literals inside each clause.
    for (i, c) in clauses.iter_mut().enumerate() {
        let w = c.len();
        if w > 0 {
            c.rotate_left(i % w);
        }
    }
    Cnf {
        num_vars: cnf.num_vars,
        clauses,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    #[test]
    fn clause_order_invariance((cnf, perm) in arb_cnf_and_perm()) {
        let shuffled = permuted(&cnf, &perm);
        let a = Solver::from_cnf(&cnf).solve().is_sat();
        let b = Solver::from_cnf(&shuffled).solve().is_sat();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn duplication_invariance((cnf, _) in arb_cnf_and_perm()) {
        let mut doubled = cnf.clone();
        doubled.clauses.extend(cnf.clauses.clone());
        prop_assert_eq!(
            Solver::from_cnf(&cnf).solve().is_sat(),
            Solver::from_cnf(&doubled).solve().is_sat()
        );
    }

    #[test]
    fn minimization_switch_invariance((cnf, _) in arb_cnf_and_perm()) {
        let mut on = Solver::from_cnf(&cnf);
        on.set_clause_minimization(true);
        let mut off = Solver::from_cnf(&cnf);
        off.set_clause_minimization(false);
        let expected = dpll::is_sat(&cnf);
        prop_assert_eq!(on.solve().is_sat(), expected);
        prop_assert_eq!(off.solve().is_sat(), expected);
    }

    #[test]
    fn model_is_stable_under_resolve((cnf, _) in arb_cnf_and_perm()) {
        // Re-solving after reading the model must keep the instance SAT
        // and produce a (possibly different) satisfying model.
        let mut s = Solver::from_cnf(&cnf);
        if s.solve().is_sat() {
            let m1 = s.model();
            prop_assert!(cnf.satisfied_by(&m1));
            prop_assert!(s.solve().is_sat());
            let m2 = s.model();
            prop_assert!(cnf.satisfied_by(&m2));
        }
    }
}
