//! Robustness properties of the CDCL solver: answers must be invariant
//! under clause reordering, literal reordering, duplication, and the
//! clause-minimization switch. Randomized via the in-repo PRNG.

use ddb_logic::cnf::{Cnf, CnfBuilder};
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Literal};
use ddb_sat::{dpll, Solver};

/// Random CNF over 7 vars (1–19 clauses of 1–4 literals) plus a
/// permutation-seed vector of the same length.
fn random_cnf_and_perm(rng: &mut XorShift64Star) -> (Cnf, Vec<usize>) {
    let len = rng.gen_range(1, 20);
    let mut b = CnfBuilder::new(7);
    for _ in 0..len {
        let c: Vec<Literal> = (0..rng.gen_range_inclusive(1, 4))
            .map(|_| Literal::with_sign(Atom::new(rng.gen_range(0, 7) as u32), rng.gen_bool(0.5)))
            .collect();
        b.add_clause(c);
    }
    let perm = (0..len).map(|_| rng.gen_range(0, len.max(1))).collect();
    (b.finish(), perm)
}

fn permuted(cnf: &Cnf, seed: &[usize]) -> Cnf {
    // Deterministic pseudo-shuffle driven by the seed values.
    let mut clauses = cnf.clauses.clone();
    let len = clauses.len();
    for (i, &s) in seed.iter().enumerate() {
        clauses.swap(i % len, s % len);
    }
    // Also rotate literals inside each clause.
    for (i, c) in clauses.iter_mut().enumerate() {
        let w = c.len();
        if w > 0 {
            c.rotate_left(i % w);
        }
    }
    Cnf {
        num_vars: cnf.num_vars,
        clauses,
    }
}

#[test]
fn clause_order_invariance() {
    let mut rng = XorShift64Star::seed_from_u64(0x0B1);
    for case in 0..250 {
        let (cnf, perm) = random_cnf_and_perm(&mut rng);
        let shuffled = permuted(&cnf, &perm);
        let a = Solver::from_cnf(&cnf).solve().unwrap().is_sat();
        let b = Solver::from_cnf(&shuffled).solve().unwrap().is_sat();
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn duplication_invariance() {
    let mut rng = XorShift64Star::seed_from_u64(0x0B2);
    for case in 0..250 {
        let (cnf, _) = random_cnf_and_perm(&mut rng);
        let mut doubled = cnf.clone();
        doubled.clauses.extend(cnf.clauses.clone());
        assert_eq!(
            Solver::from_cnf(&cnf).solve().unwrap().is_sat(),
            Solver::from_cnf(&doubled).solve().unwrap().is_sat(),
            "case {case}"
        );
    }
}

#[test]
fn minimization_switch_invariance() {
    let mut rng = XorShift64Star::seed_from_u64(0x0B3);
    for case in 0..250 {
        let (cnf, _) = random_cnf_and_perm(&mut rng);
        let mut on = Solver::from_cnf(&cnf);
        on.set_clause_minimization(true);
        let mut off = Solver::from_cnf(&cnf);
        off.set_clause_minimization(false);
        let expected = dpll::is_sat(&cnf).unwrap();
        assert_eq!(on.solve().unwrap().is_sat(), expected, "case {case}");
        assert_eq!(off.solve().unwrap().is_sat(), expected, "case {case}");
    }
}

#[test]
fn model_is_stable_under_resolve() {
    let mut rng = XorShift64Star::seed_from_u64(0x0B4);
    for case in 0..250 {
        let (cnf, _) = random_cnf_and_perm(&mut rng);
        // Re-solving after reading the model must keep the instance SAT
        // and produce a (possibly different) satisfying model.
        let mut s = Solver::from_cnf(&cnf);
        if s.solve().unwrap().is_sat() {
            let m1 = s.model();
            assert!(cnf.satisfied_by(&m1), "case {case}");
            assert!(s.solve().unwrap().is_sat(), "case {case}");
            let m2 = s.model();
            assert!(cnf.satisfied_by(&m2), "case {case}");
        }
    }
}
