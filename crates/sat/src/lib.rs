//! # ddb-sat — the NP oracle
//!
//! A from-scratch SAT layer for the disjunctive-database workspace. Every
//! semantics in the paper whose decision problems sit at or above NP in the
//! polynomial hierarchy is implemented in `ddb-models`/`ddb-core` as a
//! polynomial-time procedure *around calls into this crate* — so the crate
//! is, quite literally, the paper's NP oracle.
//!
//! Two solvers are provided:
//!
//! * [`Solver`] — a CDCL solver with two-watched-literal propagation,
//!   first-UIP conflict analysis, VSIDS variable activities with phase
//!   saving, Luby restarts, learnt-clause database reduction, and an
//!   incremental assumptions interface;
//! * [`dpll`] — a deliberately simple DPLL solver used as a *reference
//!   implementation*: the test suite (including property-based tests)
//!   cross-checks CDCL against DPLL on random formulas.
//!
//! [`enumerate_models`] enumerates satisfying assignments projected onto a
//! prefix of the variables (the database atoms), which is the workhorse of
//! minimal-model and stable-model enumeration.
//!
//! Oracle accounting: [`Solver`] counts `solve` invocations, decisions,
//! propagations and conflicts ([`Stats`]); the complexity experiments of
//! `ddb-bench` report these numbers to make the paper's oracle-bounded
//! upper bounds (e.g. `P^{Σᵖ₂}[O(log n)]`) observable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimacs;
pub mod dpll;
mod enumerate;
mod heap;
mod solver;

pub use enumerate::{all_models, enumerate_models};
pub use solver::{SolveResult, Solver, Stats};
