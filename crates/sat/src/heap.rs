//! Indexed max-heap over variables keyed by activity (MiniSat-style).

/// A binary max-heap of variable indices ordered by an external activity
/// array, supporting `decrease`-free activity bumps via [`VarHeap::update`]
/// and O(log n) removal of the maximum.
///
/// The heap stores each variable's position so membership tests and updates
/// are O(1)/O(log n).
#[derive(Clone, Debug, Default)]
pub(crate) struct VarHeap {
    heap: Vec<u32>,
    /// `pos[v]` = index of `v` in `heap`, or `u32::MAX` if absent.
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl VarHeap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the position table to cover `n` variables.
    pub fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    #[allow(dead_code)] // part of the heap API surface
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    /// Inserts `v` if absent.
    pub fn insert(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Re-establishes heap order after `v`'s activity increased.
    pub fn update(&mut self, v: u32, activity: &[f64]) {
        let p = self.pos[v as usize];
        if p != ABSENT {
            self.sift_up(p as usize, activity);
        }
    }

    /// Removes and returns the variable with maximum activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top as usize] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] > activity[self.heap[parent] as usize] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow(4);
        for v in 0..4 {
            h.insert(v, &activity);
        }
        let mut out = Vec::new();
        while let Some(v) = h.pop_max(&activity) {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 2, 0]);
    }

    #[test]
    fn reinsert_after_pop() {
        let activity = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow(2);
        h.insert(0, &activity);
        h.insert(1, &activity);
        assert_eq!(h.pop_max(&activity), Some(1));
        assert!(!h.contains(1));
        h.insert(1, &activity);
        assert!(h.contains(1));
        assert_eq!(h.pop_max(&activity), Some(1));
    }

    #[test]
    fn update_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        h.grow(3);
        for v in 0..3 {
            h.insert(v, &activity);
        }
        activity[0] = 10.0;
        h.update(0, &activity);
        assert_eq!(h.pop_max(&activity), Some(0));
    }

    #[test]
    fn duplicate_insert_ignored() {
        let activity = vec![1.0];
        let mut h = VarHeap::new();
        h.grow(1);
        h.insert(0, &activity);
        h.insert(0, &activity);
        assert_eq!(h.pop_max(&activity), Some(0));
        assert_eq!(h.pop_max(&activity), None);
    }
}
