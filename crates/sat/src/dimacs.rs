//! DIMACS CNF reading and writing — the lingua franca of SAT, so the
//! oracle substrate can be exercised against external instances and its
//! answers cross-checked by external solvers.

use ddb_logic::cnf::Cnf;
use ddb_logic::{Atom, Literal};
use std::fmt::Write as _;

/// A DIMACS parse error with line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DIMACS error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text. Accepts comments (`c …`), a `p cnf V C`
/// header, and clauses terminated by `0` (possibly spanning lines).
/// Variables beyond the declared count grow the formula (with a warning
/// dropped — lenient mode, like most solvers).
///
/// Malformed input is a typed [`DimacsError`] (with line number), never a
/// panic — propagate it with `?` instead of unwrapping:
/// ```
/// use ddb_sat::{dimacs, Solver};
/// fn check(text: &str) -> Result<bool, Box<dyn std::error::Error>> {
///     let cnf = dimacs::parse_dimacs(text)?; // DimacsError on bad input
///     Ok(Solver::from_cnf(&cnf).solve()?.is_sat())
/// }
/// assert!(check("p cnf 2 2\n1 2 0\n-1 0\n").unwrap());
/// assert!(check("p cnf 2 1\n1 q 0\n").is_err());
/// ```
pub fn parse_dimacs(text: &str) -> Result<Cnf, DimacsError> {
    let mut num_vars = 0usize;
    let mut declared: Option<(usize, usize)> = None;
    let mut clauses: Vec<Vec<Literal>> = Vec::new();
    let mut current: Vec<Literal> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        let err = |message: String| DimacsError {
            line: lineno + 1,
            message,
        };
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(err(format!("malformed header `{line}`")));
            }
            let v: usize = parts[1]
                .parse()
                .map_err(|_| err(format!("bad variable count `{}`", parts[1])))?;
            let c: usize = parts[2]
                .parse()
                .map_err(|_| err(format!("bad clause count `{}`", parts[2])))?;
            declared = Some((v, c));
            num_vars = num_vars.max(v);
            continue;
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| err(format!("bad literal `{tok}`")))?;
            if v == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let var = v.unsigned_abs() as usize - 1;
                num_vars = num_vars.max(var + 1);
                current.push(Literal::with_sign(Atom::new(var as u32), v > 0));
            }
        }
    }
    if !current.is_empty() {
        // Trailing clause without terminating 0 — accept it (lenient).
        clauses.push(current);
    }
    if let Some((_, c)) = declared {
        if clauses.len() != c {
            // Lenient: header clause count is advisory; many generators lie.
        }
    }
    Ok(Cnf { num_vars, clauses })
}

/// Renders a CNF as DIMACS text.
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for &lit in clause {
            let v = lit.atom().index() as i64 + 1;
            let _ = write!(out, "{} ", if lit.is_positive() { v } else { -v });
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dpll, Solver};

    #[test]
    fn parse_simple() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0], vec![Atom::new(0).pos(), Atom::new(1).neg()]);
    }

    #[test]
    fn roundtrip() {
        let cnf = parse_dimacs("p cnf 4 3\n1 2 0\n-1 3 0\n-2 -3 4 0\n").unwrap();
        let text = to_dimacs(&cnf);
        let cnf2 = parse_dimacs(&text).unwrap();
        assert_eq!(cnf.num_vars, cnf2.num_vars);
        assert_eq!(cnf.clauses, cnf2.clauses);
    }

    #[test]
    fn multiline_clause() {
        let cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn empty_clause() {
        let cnf = parse_dimacs("p cnf 1 1\n0\n").unwrap();
        assert_eq!(cnf.clauses, vec![Vec::new()]);
        assert!(!dpll::is_sat(&cnf).unwrap());
    }

    #[test]
    fn undeclared_variables_grow() {
        let cnf = parse_dimacs("p cnf 1 1\n5 0\n").unwrap();
        assert_eq!(cnf.num_vars, 5);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(parse_dimacs("p dnf 1 1\n1 0").is_err());
        assert!(parse_dimacs("p cnf x 1\n1 0").is_err());
    }

    #[test]
    fn bad_literal_rejected() {
        let err = parse_dimacs("p cnf 1 1\n1 q 0").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn solver_on_parsed_instance() {
        // A small unsatisfiable instance in DIMACS form.
        let cnf = parse_dimacs("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n").unwrap();
        assert!(!Solver::from_cnf(&cnf).solve().unwrap().is_sat());
        assert!(!dpll::is_sat(&cnf).unwrap());
    }

    #[test]
    fn trailing_clause_without_zero() {
        let cnf = parse_dimacs("p cnf 2 1\n1 2").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
    }
}
