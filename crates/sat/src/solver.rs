//! CDCL SAT solver.
//!
//! A compact but complete conflict-driven clause-learning solver in the
//! MiniSat lineage: two-watched-literal propagation, first-UIP learning,
//! VSIDS with phase saving, Luby restarts, activity-based learnt-clause
//! reduction, and incremental solving under assumptions.
//!
//! The solver's default polarity is *false*, so discovered models are biased
//! toward few true atoms — a deliberate choice: the minimal-model loops in
//! `ddb-models` converge faster when the oracle starts low.

use crate::heap::VarHeap;
use ddb_logic::cnf::Cnf;
use ddb_logic::{Atom, Interpretation, Literal};
use ddb_obs::budget::{self, Governed, Interrupted};

/// Outcome of a `solve` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model`].
    Sat,
    /// No satisfying assignment exists (under the given assumptions).
    Unsat,
}

impl SolveResult {
    /// `true` iff satisfiable.
    pub fn is_sat(self) -> bool {
        matches!(self, SolveResult::Sat)
    }
}

/// Solver statistics. `solves` counts oracle invocations — the quantity the
/// complexity experiments report.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Number of `solve`/`solve_with_assumptions` calls.
    pub solves: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Learnt clauses currently retained.
    pub learnts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Literals removed from learnt clauses by self-subsumption
    /// minimization.
    pub minimized_literals: u64,
    /// High-water mark of total clauses held (problem + learnt), across
    /// the solver's lifetime. A gauge, not a monotone total.
    pub max_clauses: u64,
}

impl std::ops::AddAssign for Stats {
    /// Aggregate statistics across solvers or runs: monotone totals add,
    /// while the gauges (`learnts`, `max_clauses`) take the maximum —
    /// summing high-water marks would overstate peak memory pressure.
    fn add_assign(&mut self, rhs: Stats) {
        self.solves += rhs.solves;
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.conflicts += rhs.conflicts;
        self.restarts += rhs.restarts;
        self.minimized_literals += rhs.minimized_literals;
        self.learnts = self.learnts.max(rhs.learnts);
        self.max_clauses = self.max_clauses.max(rhs.max_clauses);
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Literal>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Clone, Copy, Debug)]
struct Watch {
    cref: u32,
    blocker: Literal,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESTART_BASE: u64 = 100;

/// A CDCL SAT solver over the `ddb-logic` literal representation.
///
/// Typical use:
///
/// ```
/// use ddb_logic::{Atom, cnf::CnfBuilder};
/// use ddb_sat::Solver;
/// let (a, b) = (Atom::new(0), Atom::new(1));
/// let mut solver = Solver::new();
/// solver.ensure_vars(2);
/// solver.add_clause(&[a.pos(), b.pos()]);
/// solver.add_clause(&[a.neg()]);
/// assert!(solver.solve()?.is_sat());
/// assert!(solver.model().contains(b));
/// # Ok::<(), ddb_obs::Interrupted>(())
/// ```
///
/// Every `solve` call is governed by the thread's installed
/// [`ddb_obs::Budget`] (if any): the conflict loop charges the budget and
/// the call returns `Err(`[`Interrupted`]`)` when a deadline, conflict
/// cap, or cancel flag trips. The solver backtracks to the root level on
/// that path, so it stays reusable — re-solve after lifting the budget
/// and the answer is unaffected.
#[derive(Clone, Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Literal>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    num_vars: usize,
    num_learnts: usize,
    max_learnts: f64,
    minimize_learnt: bool,
    stats: Stats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            num_vars: 0,
            num_learnts: 0,
            max_learnts: 0.0,
            minimize_learnt: true,
            stats: Stats::default(),
        }
    }

    /// Enables or disables learnt-clause self-subsumption minimization
    /// (on by default; the oracle-ablation bench switches it off).
    pub fn set_clause_minimization(&mut self, enabled: bool) {
        self.minimize_learnt = enabled;
    }

    /// Builds a solver from a CNF formula.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Self::new();
        s.ensure_vars(cnf.num_vars);
        for clause in &cnf.clauses {
            s.add_clause(clause);
        }
        s
    }

    /// Makes sure variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        if n <= self.num_vars {
            return;
        }
        self.num_vars = n;
        self.watches.resize(2 * n, Vec::new());
        self.assign.resize(n, LBool::Undef);
        self.level.resize(n, 0);
        self.reason.resize(n, None);
        self.activity.resize(n, 0.0);
        self.phase.resize(n, false);
        self.seen.resize(n, false);
        self.order.grow(n);
        for v in 0..n as u32 {
            if self.assign[v as usize] == LBool::Undef {
                self.order.insert(v, &self.activity);
            }
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Statistics so far.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Reset all statistics to zero without touching solver state (clauses,
    /// learnt database, and assignments survive). Callers that reuse one
    /// solver across logically separate oracle queries use this to get
    /// per-query accounting instead of cumulative-by-accident totals.
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
        // `learnts` is a live gauge, not an event count: re-seed it from
        // the solver's current state so the next report stays truthful.
        self.stats.learnts = self.num_learnts as u64;
        self.stats.max_clauses = self.clauses.len() as u64;
    }

    #[inline]
    fn lit_value(&self, l: Literal) -> LBool {
        match self.assign[l.atom().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause. May be called between `solve` calls; any leftover
    /// search state is backtracked first (which invalidates a previously
    /// read model — call [`Solver::model`] before adding more clauses).
    /// Returns `false` if the solver became trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Literal]) -> bool {
        self.cancel_until(0);
        if self.unsat {
            return false;
        }
        if let Some(max) = lits.iter().map(|l| l.atom().index()).max() {
            self.ensure_vars(max + 1);
        }
        // Normalize: sort, dedup, drop tautologies and level-0-false lits.
        let mut c: Vec<Literal> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut i = 0;
        while i + 1 < c.len() {
            if c[i].atom() == c[i + 1].atom() {
                return true; // x ∨ ¬x — tautology
            }
            i += 1;
        }
        c.retain(|&l| self.lit_value(l) != LBool::False);
        if c.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true; // already satisfied at level 0
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                if !self.enqueue(c[0], None) {
                    self.unsat = true;
                    return false;
                }
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(c, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Literal>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(Watch {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watch {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.num_learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        cref
    }

    /// Assigns `l` true with optional reason clause. Returns `false` on
    /// conflict with the current assignment.
    fn enqueue(&mut self, l: Literal, reason: Option<u32>) -> bool {
        match self.lit_value(l) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = l.atom().index();
                self.assign[v] = if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                };
                self.level[v] = self.decision_level() as u32;
                self.reason[v] = reason;
                self.phase[v] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.complement();
            // Take the watch list for false_lit; rebuild as we go.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut keep = 0usize;
            let mut conflict = None;
            let mut wi = 0usize;
            while wi < ws.len() {
                let w = ws[wi];
                wi += 1;
                // Fast path: blocker already true.
                if self.lit_value(w.blocker) == LBool::True {
                    ws[keep] = w;
                    keep += 1;
                    continue;
                }
                let cref = w.cref as usize;
                if self.clauses[cref].deleted {
                    continue; // lazily drop watches of deleted clauses
                }
                // Make sure false_lit is at position 1.
                {
                    let lits = &mut self.clauses[cref].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[keep] = Watch {
                        cref: w.cref,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[cref].lits.len() {
                    let lk = self.clauses[cref].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[lk.code()].push(Watch {
                            cref: w.cref,
                            blocker: first,
                        });
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                ws[keep] = Watch {
                    cref: w.cref,
                    blocker: first,
                };
                keep += 1;
                if self.lit_value(first) == LBool::False {
                    // Conflict: keep the remaining watches and bail out.
                    while wi < ws.len() {
                        ws[keep] = ws[wi];
                        keep += 1;
                        wi += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.cref);
                } else {
                    let ok = self.enqueue(first, Some(w.cref));
                    debug_assert!(ok);
                }
                if conflict.is_some() {
                    break;
                }
            }
            ws.truncate(keep);
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v as u32, &self.activity);
    }

    fn bump_clause(&mut self, c: usize) {
        self.clauses[c].activity += self.cla_inc;
        if self.clauses[c].activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level. A malformed implication
    /// graph (impossible from correct inputs) surfaces as an
    /// [`Interrupted`] invariant error instead of a panic, with the
    /// analysis bookkeeping cleaned up so the solver can be reset.
    fn analyze(&mut self, mut confl: u32) -> Governed<(Vec<Literal>, usize)> {
        let mut learnt: Vec<Literal> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Literal> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<usize> = Vec::new();
        let current_level = self.decision_level() as u32;

        loop {
            self.bump_clause(confl as usize);
            let lits = self.clauses[confl as usize].lits.clone();
            for &q in lits.iter() {
                if Some(q) == p {
                    continue;
                }
                let v = q.atom().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next trail literal to expand.
            let bail = |this: &mut Self, what: &str| {
                for &v in &to_clear {
                    this.seen[v] = false;
                }
                Interrupted::invariant(what)
            };
            let lit = loop {
                if index == 0 {
                    return Err(bail(self, "conflict analysis ran off the trail"));
                }
                index -= 1;
                if self.seen[self.trail[index].atom().index()] {
                    break self.trail[index];
                }
            };
            let v = lit.atom().index();
            self.seen[v] = false;
            if counter == 0 {
                return Err(bail(self, "conflict analysis lost its literal count"));
            }
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            confl = match self.reason[v] {
                Some(r) => r,
                None => return Err(bail(self, "non-decision literal lacks a reason")),
            };
            p = Some(lit);
        }
        let uip = match p {
            Some(l) => l.complement(),
            None => {
                for v in to_clear {
                    self.seen[v] = false;
                }
                return Err(Interrupted::invariant("conflict analysis found no UIP"));
            }
        };
        learnt.insert(0, uip);

        // Self-subsumption minimization (MiniSat's "basic" mode): a
        // non-asserting literal is redundant if its reason clause's other
        // literals are all already in the learnt clause (seen) or at
        // level 0. Sound because implication-graph reasons point strictly
        // earlier in the trail, so removal chains ground out.
        if self.minimize_learnt && learnt.len() > 1 {
            let mut keep = 1usize;
            for i in 1..learnt.len() {
                let v = learnt[i].atom().index();
                let redundant = match self.reason[v] {
                    None => false,
                    Some(cref) => self.clauses[cref as usize].lits.iter().all(|&q| {
                        let qv = q.atom().index();
                        qv == v || self.seen[qv] || self.level[qv] == 0
                    }),
                };
                if redundant {
                    self.stats.minimized_literals += 1;
                } else {
                    learnt[keep] = learnt[i];
                    keep += 1;
                }
            }
            learnt.truncate(keep);
        }

        // Backtrack level = max level among the non-asserting literals.
        let mut blevel = 0usize;
        let mut max_i = 1usize;
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.atom().index()] as usize;
            if lv > blevel {
                blevel = lv;
                max_i = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_i);
        }
        for v in to_clear {
            self.seen[v] = false;
        }
        Ok((learnt, blevel))
    }

    /// Backtracks all search state to the root level, discarding any
    /// partial assignment (learnt clauses and level-0 facts are kept).
    /// This runs automatically when a solve is interrupted by the budget
    /// layer; it is public so callers can re-establish (and tests can
    /// verify) the quiescent state explicitly.
    pub fn reset_search(&mut self) {
        self.cancel_until(0);
    }

    /// True when no decision is outstanding — the state in which clauses
    /// may be added and a fresh `solve` started. Holds after any
    /// completed or interrupted `solve` call.
    pub fn is_quiescent(&self) -> bool {
        self.decision_level() == 0
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].atom().index();
            self.assign[v] = LBool::Undef;
            self.reason[v] = None;
            self.order.insert(v as u32, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = bound;
    }

    fn reduce_db(&mut self) {
        // Remove the lowest-activity half of the learnt clauses, sparing
        // clauses that are reasons for current assignments.
        let mut learnt_refs: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learnt && !c.deleted && !self.is_locked(i)
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let drop_count = learnt_refs.len() / 2;
        for &i in learnt_refs.iter().take(drop_count) {
            self.clauses[i].deleted = true;
            self.num_learnts -= 1;
        }
    }

    fn is_locked(&self, cref: usize) -> bool {
        let first = self.clauses[cref].lits[0];
        self.reason[first.atom().index()] == Some(cref as u32)
            && self.lit_value(first) == LBool::True
    }

    /// Luby sequence (1, 1, 2, 1, 1, 2, 4, …), 0-indexed.
    fn luby(mut i: u64) -> u64 {
        // Find the finite subsequence that contains index i and the size of
        // that subsequence (MiniSat's `luby(2, i)`).
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < i + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != i {
            size = (size - 1) / 2;
            seq -= 1;
            i %= size;
        }
        1u64 << seq
    }

    /// Solves without assumptions. `Err` means the installed
    /// [`ddb_obs::Budget`] (if any) tripped before an answer was found;
    /// the solver is backtracked to the root level and stays reusable.
    pub fn solve(&mut self) -> Governed<SolveResult> {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. The assignment found (if
    /// SAT) satisfies all clauses and all assumptions. The solver remains
    /// usable afterwards: learnt clauses persist, assumptions do not.
    ///
    /// Each call charges one oracle call (and each conflict one conflict)
    /// against the thread's installed [`ddb_obs::Budget`]; a tripped
    /// budget surfaces as `Err(`[`Interrupted`]`)` with the solver
    /// restored to its quiescent root state.
    ///
    /// Each call increments `stats().solves` by exactly one and reports the
    /// per-call deltas (`sat.solves`, `sat.decisions`, `sat.propagations`,
    /// `sat.conflicts`) and the clause high-water mark (`sat.clauses.peak`)
    /// to the `ddb-obs` counter registry, runs under a `sat.solve` trace
    /// span, and records the per-call wall time, conflicts, and
    /// propagations into the `sat.solve.{ns,conflicts,propagations}`
    /// histograms.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Literal]) -> Governed<SolveResult> {
        let span = ddb_obs::span("sat.solve");
        self.stats.solves += 1;
        let before = self.stats;
        let result = self.solve_with_assumptions_inner(assumptions);
        if result.is_err() {
            // Interrupted mid-search: backtrack to the root so learnt
            // clauses survive but no partial assignment leaks out.
            self.cancel_until(0);
        }
        self.stats.max_clauses = self.stats.max_clauses.max(self.clauses.len() as u64);
        ddb_obs::counter_bump("sat.solves", 1);
        ddb_obs::counter_bump("sat.decisions", self.stats.decisions - before.decisions);
        ddb_obs::counter_bump(
            "sat.propagations",
            self.stats.propagations - before.propagations,
        );
        ddb_obs::counter_bump("sat.conflicts", self.stats.conflicts - before.conflicts);
        ddb_obs::counter_max("sat.clauses.peak", self.stats.max_clauses);
        ddb_obs::hist_record("sat.solve.ns", span.elapsed_ns());
        ddb_obs::hist_record(
            "sat.solve.conflicts",
            self.stats.conflicts - before.conflicts,
        );
        ddb_obs::hist_record(
            "sat.solve.propagations",
            self.stats.propagations - before.propagations,
        );
        result
    }

    fn solve_with_assumptions_inner(&mut self, assumptions: &[Literal]) -> Governed<SolveResult> {
        budget::charge_oracle_call()?;
        if self.unsat {
            return Ok(SolveResult::Unsat);
        }
        for l in assumptions {
            self.ensure_vars(l.atom().index() + 1);
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return Ok(SolveResult::Unsat);
        }

        self.max_learnts = (self.clauses.len() as f64 / 3.0).max(1000.0);
        let mut conflicts_since_restart = 0u64;
        let mut restart_budget = RESTART_BASE * Self::luby(self.stats.restarts);

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                budget::charge_conflict()?;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return Ok(SolveResult::Unsat);
                }
                let (learnt, blevel) = self.analyze(confl)?;
                self.cancel_until(blevel);
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], None);
                    debug_assert!(ok, "asserting unit must be enqueuable after backtrack");
                } else {
                    let cref = self.attach_clause(learnt, true);
                    self.bump_clause(cref as usize);
                    let first = self.clauses[cref as usize].lits[0];
                    let ok = self.enqueue(first, Some(cref));
                    debug_assert!(ok, "asserting literal must be enqueuable");
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                self.stats.learnts = self.num_learnts as u64;
            } else {
                // No conflict. A decision (or restart) is about to happen:
                // cheap governance checkpoint for conflict-free search.
                budget::checkpoint()?;
                if conflicts_since_restart >= restart_budget {
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    restart_budget = RESTART_BASE * Self::luby(self.stats.restarts);
                    self.cancel_until(0);
                    continue;
                }
                if self.num_learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.5;
                }
                // Re-assert assumptions, then decide.
                let mut next: Option<Literal> = None;
                let mut assumption_conflict = false;
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        LBool::True => {
                            // Already satisfied: open a dummy level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            assumption_conflict = true;
                            break;
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                if assumption_conflict {
                    self.cancel_until(0);
                    return Ok(SolveResult::Unsat);
                }
                let decision = match next {
                    Some(p) => Some(p),
                    None => {
                        // VSIDS decision.
                        let mut pick = None;
                        while let Some(v) = self.order.pop_max(&self.activity) {
                            if self.assign[v as usize] == LBool::Undef {
                                pick = Some(v);
                                break;
                            }
                        }
                        pick.map(|v| Literal::with_sign(Atom::new(v), self.phase[v as usize]))
                    }
                };
                match decision {
                    None => {
                        // All variables assigned: SAT.
                        return Ok(SolveResult::Sat);
                    }
                    Some(p) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(p, None);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }

    /// Search-free refutation probe: does unit propagation plus
    /// failed-literal lookahead refute the formula under `assumptions`?
    /// Enqueues each assumption at its own decision level with BCP in
    /// between, then repeatedly tests every still-undefined variable in
    /// both polarities by propagation alone — a polarity that conflicts
    /// forces the opposite literal, and the forced units feed back into
    /// the lookahead until fixpoint, a conflict, or a falsified
    /// assumption.
    ///
    /// This is the incremental analogue of [`Solver::add_clause`]
    /// returning `false` on a fresh solver: there the context lives in
    /// level-0 units (including units *learnt* by earlier solves on that
    /// solver), so a doomed clause arrives already falsified. When the
    /// same context is expressed as assumption-guarded clauses the
    /// level-0 trail stays empty, so the probe re-derives those forced
    /// units under the assumptions instead. Incremental enumerators call
    /// it to skip a final propagation-decided UNSAT call. No oracle call
    /// or conflict is charged against the budget, nothing is learnt, and
    /// the solver is left quiescent.
    pub fn refuted_by_propagation(&mut self, assumptions: &[Literal]) -> bool {
        if self.unsat {
            return true;
        }
        for l in assumptions {
            self.ensure_vars(l.atom().index() + 1);
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return true;
        }
        let mut refuted = false;
        for &p in assumptions {
            match self.lit_value(p) {
                LBool::True => continue,
                LBool::False => {
                    refuted = true;
                    break;
                }
                LBool::Undef => {
                    self.trail_lim.push(self.trail.len());
                    let ok = self.enqueue(p, None);
                    debug_assert!(ok, "undefined assumption must be enqueuable");
                    if self.propagate().is_some() {
                        refuted = true;
                        break;
                    }
                }
            }
        }
        if !refuted {
            refuted = self.failed_literal_refutes();
        }
        self.cancel_until(0);
        refuted
    }

    /// Failed-literal lookahead at the current (assumption) level: probes
    /// each undefined variable in both polarities with BCP only. Both
    /// polarities conflicting refutes; one conflicting forces the other,
    /// which is enqueued at the current level and propagated, and the
    /// sweep restarts until no new units appear. Caller cleans up with
    /// `cancel_until`.
    fn failed_literal_refutes(&mut self) -> bool {
        let base = self.decision_level();
        loop {
            let mut forced_any = false;
            for v in 0..self.num_vars as u32 {
                if self.assign[v as usize] != LBool::Undef {
                    continue;
                }
                let probe = |s: &mut Self, lit: Literal| {
                    s.trail_lim.push(s.trail.len());
                    let ok = s.enqueue(lit, None);
                    debug_assert!(ok, "undefined probe literal must be enqueuable");
                    let conflict = s.propagate().is_some();
                    s.cancel_until(base);
                    conflict
                };
                let pos_fails = probe(self, Atom::new(v).pos());
                let neg_fails = probe(self, Atom::new(v).neg());
                if pos_fails && neg_fails {
                    return true;
                }
                if pos_fails != neg_fails {
                    // Exactly one polarity failed: the other is forced.
                    let forced = Literal::with_sign(Atom::new(v), !pos_fails);
                    let ok = self.enqueue(forced, None);
                    debug_assert!(ok, "forced literal must be enqueuable");
                    if self.propagate().is_some() {
                        return true;
                    }
                    forced_any = true;
                }
            }
            if !forced_any {
                return false;
            }
        }
    }

    /// The satisfying assignment of the last successful `solve`, projected
    /// onto all variables. Call only after a `Sat` result, before adding
    /// clauses or re-solving.
    pub fn model(&self) -> Interpretation {
        let mut m = Interpretation::empty(self.num_vars);
        for v in 0..self.num_vars {
            if self.assign[v] == LBool::True {
                m.insert(Atom::new(v as u32));
            }
        }
        m
    }

    /// The value assigned to `atom` in the current model (`None` when
    /// unassigned — cannot happen right after a `Sat` result).
    pub fn value(&self, atom: Atom) -> Option<bool> {
        match self.assign[atom.index()] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: u32, pos: bool) -> Literal {
        Literal::with_sign(Atom::new(i), pos)
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        s.ensure_vars(2);
        assert!(s.add_clause(&[lit(0, true), lit(1, true)]));
        assert!(s.add_clause(&[lit(0, false)]));
        assert!(s.solve().unwrap().is_sat());
        let m = s.model();
        assert!(!m.contains(Atom::new(0)));
        assert!(m.contains(Atom::new(1)));
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert!(!s.solve().unwrap().is_sat());
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = Solver::new();
        s.ensure_vars(1);
        s.add_clause(&[lit(0, true)]);
        assert!(!s.add_clause(&[lit(0, false)]));
        assert!(!s.solve().unwrap().is_sat());
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        s.ensure_vars(1);
        assert!(s.add_clause(&[lit(0, true), lit(0, false)]));
        assert!(s.solve().unwrap().is_sat());
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j, i<3, j<2. var = i*2+j.
        let mut s = Solver::new();
        s.ensure_vars(6);
        for i in 0..3u32 {
            s.add_clause(&[lit(i * 2, true), lit(i * 2 + 1, true)]);
        }
        for j in 0..2u32 {
            for i1 in 0..3u32 {
                for i2 in (i1 + 1)..3u32 {
                    s.add_clause(&[lit(i1 * 2 + j, false), lit(i2 * 2 + j, false)]);
                }
            }
        }
        assert!(!s.solve().unwrap().is_sat());
    }

    #[test]
    fn assumptions_sat_and_unsat() {
        // (a ∨ b) ∧ (¬a ∨ c)
        let mut s = Solver::new();
        s.ensure_vars(3);
        s.add_clause(&[lit(0, true), lit(1, true)]);
        s.add_clause(&[lit(0, false), lit(2, true)]);
        assert!(s.solve_with_assumptions(&[lit(0, true)]).unwrap().is_sat());
        assert!(s.model().contains(Atom::new(2)));
        assert!(s
            .solve_with_assumptions(&[lit(0, true), lit(2, false)])
            .unwrap()
            .is_sat()
            .eq(&false));
        // Solver still usable, and unaffected by past assumptions.
        assert!(s.solve().unwrap().is_sat());
        assert!(s.solve_with_assumptions(&[lit(1, true)]).unwrap().is_sat());
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = Solver::new();
        s.ensure_vars(1);
        assert!(!s
            .solve_with_assumptions(&[lit(0, true), lit(0, false)])
            .unwrap()
            .is_sat());
        assert!(s.solve().unwrap().is_sat());
    }

    #[test]
    fn chain_propagation() {
        // x0 ∧ (x_{i} → x_{i+1}) chain; assume ¬x_{n-1} → unsat.
        let n = 200u32;
        let mut s = Solver::new();
        s.ensure_vars(n as usize);
        s.add_clause(&[lit(0, true)]);
        for i in 0..n - 1 {
            s.add_clause(&[lit(i, false), lit(i + 1, true)]);
        }
        assert!(s.solve().unwrap().is_sat());
        let m = s.model();
        for i in 0..n {
            assert!(m.contains(Atom::new(i)));
        }
        assert!(!s
            .solve_with_assumptions(&[lit(n - 1, false)])
            .unwrap()
            .is_sat());
    }

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        s.ensure_vars(2);
        s.add_clause(&[lit(0, true), lit(1, true)]);
        assert!(s.solve().unwrap().is_sat());
        s.add_clause(&[lit(0, false)]);
        assert!(s.solve().unwrap().is_sat());
        assert!(s.model().contains(Atom::new(1)));
        s.add_clause(&[lit(1, false)]);
        assert!(!s.solve().unwrap().is_sat());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        s.ensure_vars(2);
        s.add_clause(&[lit(0, true), lit(1, true)]);
        s.solve().unwrap();
        s.solve().unwrap();
        assert_eq!(s.stats().solves, 2);
    }
}
