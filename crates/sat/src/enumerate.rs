//! Model enumeration with projection.

use crate::Solver;
use ddb_logic::cnf::Cnf;
use ddb_logic::{Atom, Interpretation, Literal};
use ddb_obs::budget::{self, Governed};

/// Enumerates the satisfying assignments of `cnf`, projected onto the first
/// `project_to` variables (the database atoms; Tseitin auxiliaries are
/// existentially quantified away).
///
/// Each distinct projection is reported exactly once, via blocking clauses
/// over the projected variables. The callback returns `true` to continue
/// enumeration, `false` to stop early. Returns the number of projections
/// reported.
///
/// Worst case the number of models is exponential — callers are the
/// Σᵖ₂/Πᵖ₂ procedures of `ddb-models`, which either bound enumeration or
/// accept the cost knowingly (that *is* the complexity result). The
/// installed [`ddb_obs::Budget`] (if any) is charged one model per
/// projection reported, so `max_models`/deadline budgets interrupt
/// runaway enumerations with a typed error instead of a hang.
pub fn enumerate_models(
    cnf: &Cnf,
    project_to: usize,
    mut on_model: impl FnMut(&Interpretation) -> bool,
) -> Governed<usize> {
    assert!(project_to <= cnf.num_vars);
    let mut solver = Solver::from_cnf(cnf);
    // Important: make sure the projection variables all exist even if the
    // CNF never mentions some of them.
    solver.ensure_vars(cnf.num_vars.max(project_to));
    let mut count = 0usize;
    while solver.solve()?.is_sat() {
        let full = solver.model();
        let mut projected = Interpretation::empty(project_to);
        for v in 0..project_to {
            if full.contains(Atom::new(v as u32)) {
                projected.insert(Atom::new(v as u32));
            }
        }
        count += 1;
        ddb_obs::counter_bump("sat.enumerated_models", 1);
        budget::charge_model().map_err(|e| e.with_partial(format!("{count} model(s) found")))?;
        if !on_model(&projected) {
            break;
        }
        // Block this projection: at least one projected variable must flip.
        let blocking: Vec<Literal> = (0..project_to)
            .map(|v| {
                let a = Atom::new(v as u32);
                Literal::with_sign(a, !projected.contains(a))
            })
            .collect();
        if blocking.is_empty() || !solver.add_clause(&blocking) {
            break; // no projected vars, or blocking made the instance unsat
        }
    }
    Ok(count)
}

/// Collects all projected models into a vector (convenience for tests and
/// small-instance reference computations).
/// (kept public for reference engines and benches)
pub fn all_models(cnf: &Cnf, project_to: usize) -> Governed<Vec<Interpretation>> {
    let mut out = Vec::new();
    enumerate_models(cnf, project_to, |m| {
        out.push(m.clone());
        true
    })?;
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::cnf::CnfBuilder;

    fn lit(i: u32, pos: bool) -> Literal {
        Literal::with_sign(Atom::new(i), pos)
    }

    #[test]
    fn enumerates_all_models() {
        // a ∨ b over 2 vars: 3 models.
        let mut b = CnfBuilder::new(2);
        b.add_clause(vec![lit(0, true), lit(1, true)]);
        let models = all_models(&b.finish(), 2).unwrap();
        assert_eq!(models.len(), 3);
    }

    #[test]
    fn projection_dedups() {
        // (a ∨ b) with a free third variable, projected to 2 vars: still 3.
        let mut b = CnfBuilder::new(3);
        b.add_clause(vec![lit(0, true), lit(1, true)]);
        b.add_clause(vec![lit(2, true), lit(2, false)]); // mention var 2
        let models = all_models(&b.finish(), 2).unwrap();
        assert_eq!(models.len(), 3);
    }

    #[test]
    fn early_stop() {
        let mut b = CnfBuilder::new(3);
        b.add_clause(vec![lit(0, true), lit(1, true), lit(2, true)]);
        let mut seen = 0;
        let count = enumerate_models(&b.finish(), 3, |_| {
            seen += 1;
            seen < 2
        })
        .unwrap();
        assert_eq!(count, 2);
    }

    #[test]
    fn unsat_enumerates_nothing() {
        let mut b = CnfBuilder::new(1);
        b.add_clause(vec![lit(0, true)]);
        b.add_clause(vec![lit(0, false)]);
        assert_eq!(all_models(&b.finish(), 1).unwrap().len(), 0);
    }

    #[test]
    fn zero_projection_reports_once() {
        // Satisfiable formula projected to zero variables: exactly one
        // (empty) projection.
        let mut b = CnfBuilder::new(1);
        b.add_clause(vec![lit(0, true)]);
        let n = enumerate_models(&b.finish(), 0, |_| true).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn free_variables_in_projection_enumerated() {
        // CNF that never mentions var 1, projected to 2 vars: the free
        // variable doubles the projections.
        let mut b = CnfBuilder::new(2);
        b.add_clause(vec![lit(0, true)]);
        let models = all_models(&b.finish(), 2).unwrap();
        assert_eq!(models.len(), 2);
    }
}
