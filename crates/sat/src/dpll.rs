//! A deliberately simple DPLL solver used as a reference implementation.
//!
//! No watched literals, no learning — just unit propagation, pure-literal
//! elimination and chronological backtracking on a cloned clause set. It is
//! exponentially slower than [`crate::Solver`] on hard instances, which is
//! exactly why the benchmark suite keeps it around: the CDCL-vs-DPLL
//! ablation of DESIGN.md measures what the oracle substrate buys.
//!
//! Like the CDCL solver, every call is governed by the thread's installed
//! [`ddb_obs::Budget`]: each branching step is a checkpoint, and a tripped
//! budget surfaces as `Err(`[`Interrupted`]`)` rather than a hang. The
//! historical `expect`-on-`None` paths (the unit literal of a unit clause,
//! the branch variable of an unsatisfied clause) now report
//! invariant-violation interruptions instead of aborting the process.

use ddb_logic::cnf::Cnf;
use ddb_logic::{Atom, Interpretation, Literal};
use ddb_obs::budget::{self, Governed, Interrupted};

/// Decision procedure: is `cnf` satisfiable? Returns a model if so; `Err`
/// when the installed budget trips mid-search.
pub fn solve(cnf: &Cnf) -> Governed<Option<Interpretation>> {
    ddb_obs::counter_bump("sat.dpll.solves", 1);
    budget::charge_oracle_call()?;
    let mut assign: Vec<Option<bool>> = vec![None; cnf.num_vars];
    let clauses: Vec<Vec<Literal>> = cnf.clauses.clone();
    if dpll(&clauses, &mut assign)? {
        let mut m = Interpretation::empty(cnf.num_vars);
        for (v, val) in assign.iter().enumerate() {
            if val.unwrap_or(false) {
                m.insert(Atom::new(v as u32));
            }
        }
        Ok(Some(m))
    } else {
        Ok(None)
    }
}

/// Whether `cnf` is satisfiable; `Err` when the installed budget trips.
pub fn is_sat(cnf: &Cnf) -> Governed<bool> {
    Ok(solve(cnf)?.is_some())
}

fn lit_value(assign: &[Option<bool>], l: Literal) -> Option<bool> {
    assign[l.atom().index()].map(|b| b == l.is_positive())
}

/// Simplification result of one propagation pass.
enum Simp {
    Conflict,
    Fixpoint,
    Progress,
}

fn propagate_once(clauses: &[Vec<Literal>], assign: &mut [Option<bool>]) -> Governed<Simp> {
    let mut progress = false;
    for clause in clauses {
        let mut unassigned: Option<Literal> = None;
        let mut num_unassigned = 0;
        let mut satisfied = false;
        for &l in clause {
            match lit_value(assign, l) {
                Some(true) => {
                    satisfied = true;
                    break;
                }
                Some(false) => {}
                None => {
                    num_unassigned += 1;
                    unassigned = Some(l);
                }
            }
        }
        if satisfied {
            continue;
        }
        match num_unassigned {
            0 => return Ok(Simp::Conflict),
            1 => {
                let Some(l) = unassigned else {
                    return Err(Interrupted::invariant("unit clause lost its unit literal"));
                };
                assign[l.atom().index()] = Some(l.is_positive());
                progress = true;
            }
            _ => {}
        }
    }
    Ok(if progress {
        Simp::Progress
    } else {
        Simp::Fixpoint
    })
}

fn dpll(clauses: &[Vec<Literal>], assign: &mut Vec<Option<bool>>) -> Governed<bool> {
    // Every node of the search tree is one governance checkpoint.
    budget::checkpoint()?;
    // Unit propagation to fixpoint.
    let snapshot = assign.clone();
    loop {
        match propagate_once(clauses, assign)? {
            Simp::Conflict => {
                *assign = snapshot;
                return Ok(false);
            }
            Simp::Progress => continue,
            Simp::Fixpoint => break,
        }
    }
    // Pure-literal elimination over unsatisfied clauses.
    {
        let mut pos = vec![false; assign.len()];
        let mut neg = vec![false; assign.len()];
        for clause in clauses {
            if clause.iter().any(|&l| lit_value(assign, l) == Some(true)) {
                continue;
            }
            for &l in clause {
                if lit_value(assign, l).is_none() {
                    if l.is_positive() {
                        pos[l.atom().index()] = true;
                    } else {
                        neg[l.atom().index()] = true;
                    }
                }
            }
        }
        for v in 0..assign.len() {
            if assign[v].is_none() && (pos[v] ^ neg[v]) {
                assign[v] = Some(pos[v]);
            }
        }
    }
    // Pick a branching variable: first unassigned in an unsatisfied clause.
    let mut branch: Option<Atom> = None;
    let mut all_satisfied = true;
    for clause in clauses {
        let mut satisfied = false;
        let mut candidate = None;
        for &l in clause {
            match lit_value(assign, l) {
                Some(true) => {
                    satisfied = true;
                    break;
                }
                Some(false) => {}
                None => candidate = candidate.or(Some(l.atom())),
            }
        }
        if !satisfied {
            all_satisfied = false;
            match candidate {
                Some(a) => {
                    branch = Some(a);
                    break;
                }
                None => {
                    // Unsatisfied clause with no unassigned literal: conflict.
                    *assign = snapshot;
                    return Ok(false);
                }
            }
        }
    }
    if all_satisfied {
        return Ok(true);
    }
    let Some(a) = branch else {
        *assign = snapshot;
        return Err(Interrupted::invariant(
            "unsatisfied clause provides no branch variable",
        ));
    };
    for value in [false, true] {
        assign[a.index()] = Some(value);
        match dpll(clauses, assign) {
            Ok(true) => return Ok(true),
            Ok(false) => {}
            Err(e) => {
                *assign = snapshot;
                return Err(e);
            }
        }
        assign[a.index()] = None;
    }
    *assign = snapshot;
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::cnf::CnfBuilder;

    fn lit(i: u32, pos: bool) -> Literal {
        Literal::with_sign(Atom::new(i), pos)
    }

    fn cnf(num_vars: usize, clauses: &[&[Literal]]) -> Cnf {
        let mut b = CnfBuilder::new(num_vars);
        for c in clauses {
            b.add_clause(c.to_vec());
        }
        b.finish()
    }

    #[test]
    fn simple_sat() {
        let f = cnf(2, &[&[lit(0, true), lit(1, true)], &[lit(0, false)]]);
        let m = solve(&f).unwrap().expect("sat");
        assert!(f.satisfied_by(&m));
    }

    #[test]
    fn simple_unsat() {
        let f = cnf(1, &[&[lit(0, true)], &[lit(0, false)]]);
        assert!(solve(&f).unwrap().is_none());
    }

    #[test]
    fn empty_formula_sat() {
        let f = cnf(3, &[]);
        assert!(is_sat(&f).unwrap());
    }

    #[test]
    fn empty_clause_unsat() {
        let f = cnf(1, &[&[]]);
        assert!(!is_sat(&f).unwrap());
    }

    #[test]
    fn pigeonhole_unsat() {
        // 3 pigeons, 2 holes.
        let mut b = CnfBuilder::new(6);
        for i in 0..3u32 {
            b.add_clause(vec![lit(i * 2, true), lit(i * 2 + 1, true)]);
        }
        for j in 0..2u32 {
            for i1 in 0..3u32 {
                for i2 in (i1 + 1)..3u32 {
                    b.add_clause(vec![lit(i1 * 2 + j, false), lit(i2 * 2 + j, false)]);
                }
            }
        }
        assert!(!is_sat(&b.finish()).unwrap());
    }

    #[test]
    fn models_satisfy() {
        // XOR-ish structure: (a∨b) ∧ (¬a∨¬b) ∧ (a∨¬c).
        let f = cnf(
            3,
            &[
                &[lit(0, true), lit(1, true)],
                &[lit(0, false), lit(1, false)],
                &[lit(0, true), lit(2, false)],
            ],
        );
        let m = solve(&f).unwrap().expect("sat");
        assert!(f.satisfied_by(&m));
    }

    #[test]
    fn interruption_leaves_no_panic() {
        // A pigeonhole instance takes several branch checkpoints; tripping
        // at each index must return Err, never panic or a wrong answer.
        let mut b = CnfBuilder::new(6);
        for i in 0..3u32 {
            b.add_clause(vec![lit(i * 2, true), lit(i * 2 + 1, true)]);
        }
        for j in 0..2u32 {
            for i1 in 0..3u32 {
                for i2 in (i1 + 1)..3u32 {
                    b.add_clause(vec![lit(i1 * 2 + j, false), lit(i2 * 2 + j, false)]);
                }
            }
        }
        let f = b.finish();
        let total = {
            let _g = ddb_obs::Budget::unlimited().install();
            is_sat(&f).unwrap();
            ddb_obs::budget::consumed().unwrap().checkpoints
        };
        assert!(total > 2);
        for k in 0..total {
            let _g = ddb_obs::Budget::unlimited().fail_after(k).install();
            assert!(is_sat(&f).is_err(), "fail_after({k}) must interrupt");
        }
    }
}
