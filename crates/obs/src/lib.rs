//! `ddb-obs` — zero-dependency observability for the disjunctive-database
//! workspace.
//!
//! Eiter & Gottlob's complexity tables (PODS 1993) classify each
//! (semantics, problem) pair by its position in the polynomial hierarchy,
//! and the operational signature of those classes in this engine is *how
//! many NP-oracle (SAT) calls* each decision procedure makes. This crate is
//! the single instrumentation contract the rest of the workspace reports
//! against:
//!
//! - **Counters** ([`counter_add`], [`counter_max`], [`snapshot`]) — named
//!   monotonic totals and high-water gauges, e.g. `sat.solves`,
//!   `models.circ.candidates`, `sat.clauses.peak`.
//! - **Histograms** ([`hist_record`], [`hist_snapshot`]) — log-bucketed
//!   latency/size distributions (~2 significant digits), e.g.
//!   `sat.solve.ns`, `cegar.round.ns`, `pool.job.ns`, with p50/p90/p99
//!   readouts.
//! - **Spans** ([`span()`], [`time`]) — RAII-guarded hierarchical timing for
//!   decision procedures, e.g. `gcwa.infers_literal`. Each span contributes
//!   `span.<name>.calls` and `span.<name>.ns` counters.
//! - **Sink & traces** ([`set_sink`], [`MemorySink`], [`chrome_trace`],
//!   [`folded_stacks`], [`TraceReport`]) — an optional structured event
//!   stream ([`TraceEvent`]: thread id + per-thread ordinal + event),
//!   buffered per thread, with Chrome trace-event and flamegraph
//!   exporters and an aggregated span-tree report.
//! - **JSON** ([`json::Json`], [`json::parse`]) — a hand-rolled writer and
//!   parser so traces and metrics serialize with no external crates.
//! - **Budget** ([`budget::Budget`], [`budget::checkpoint`]) — resource
//!   governance: deadlines, conflict/oracle/model caps, cooperative
//!   cancellation, and deterministic fault injection, surfacing as typed
//!   [`budget::Interrupted`] errors instead of hangs or panics.
//!
//! The taxonomy of counter and span names, and the mapping from observed
//! oracle-call patterns back to the paper's complexity classes, is
//! documented in `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```
//! let before = ddb_obs::snapshot();
//! {
//!     let _outer = ddb_obs::span("example.outer");
//!     ddb_obs::counter_add("example.oracle_calls", 3);
//! }
//! let spent = ddb_obs::snapshot().diff(&before);
//! assert_eq!(spent.get("example.oracle_calls"), 3);
//! assert_eq!(spent.get("span.example.outer.calls"), 1);
//! ```

pub mod budget;
pub mod counters;
pub mod histogram;
pub mod json;
pub mod pool;
pub mod sink;
pub mod span;
pub mod trace;

pub use budget::{
    Budget, BudgetGuard, BudgetHandle, Consumed, Governed, HandleGuard, Interrupted, Resource,
};
pub use counters::{
    counter_add, counter_bump, counter_max, counter_value, flush_thread_counters, reset_counters,
    snapshot, thread_counter_total, CounterSnapshot,
};
pub use histogram::{
    flush_thread_histograms, hist_record, hist_snapshot, reset_histograms, Histogram,
    HistogramSnapshot,
};
pub use pool::run_indexed;
pub use sink::{check_span_nesting, clear_sink, set_sink, Event, MemorySink, Sink, TraceEvent};
pub use span::{current_depth, hist_span, now_ns, span, time, HistSpanGuard, SpanGuard};
pub use trace::{
    check_track_nesting, chrome_trace, flush_thread_events, folded_stacks, trace_thread_id,
    TraceReport, TreeNode,
};
