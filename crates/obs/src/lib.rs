//! `ddb-obs` — zero-dependency observability for the disjunctive-database
//! workspace.
//!
//! Eiter & Gottlob's complexity tables (PODS 1993) classify each
//! (semantics, problem) pair by its position in the polynomial hierarchy,
//! and the operational signature of those classes in this engine is *how
//! many NP-oracle (SAT) calls* each decision procedure makes. This crate is
//! the single instrumentation contract the rest of the workspace reports
//! against:
//!
//! - **Counters** ([`counter_add`], [`counter_max`], [`snapshot`]) — named
//!   monotonic totals and high-water gauges, e.g. `sat.solves`,
//!   `models.circ.candidates`, `sat.clauses.peak`.
//! - **Spans** ([`span()`], [`time`]) — RAII-guarded hierarchical timing for
//!   decision procedures, e.g. `gcwa.infers_literal`. Each span contributes
//!   `span.<name>.calls` and `span.<name>.ns` counters.
//! - **Sink** ([`set_sink`], [`MemorySink`]) — an optional structured event
//!   stream of every span transition and counter update, for traces.
//! - **JSON** ([`json::Json`], [`json::parse`]) — a hand-rolled writer and
//!   parser so traces and metrics serialize with no external crates.
//! - **Budget** ([`budget::Budget`], [`budget::checkpoint`]) — resource
//!   governance: deadlines, conflict/oracle/model caps, cooperative
//!   cancellation, and deterministic fault injection, surfacing as typed
//!   [`budget::Interrupted`] errors instead of hangs or panics.
//!
//! The taxonomy of counter and span names, and the mapping from observed
//! oracle-call patterns back to the paper's complexity classes, is
//! documented in `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```
//! let before = ddb_obs::snapshot();
//! {
//!     let _outer = ddb_obs::span("example.outer");
//!     ddb_obs::counter_add("example.oracle_calls", 3);
//! }
//! let spent = ddb_obs::snapshot().diff(&before);
//! assert_eq!(spent.get("example.oracle_calls"), 3);
//! assert_eq!(spent.get("span.example.outer.calls"), 1);
//! ```

pub mod budget;
pub mod counters;
pub mod json;
pub mod pool;
pub mod sink;
pub mod span;

pub use budget::{
    Budget, BudgetGuard, BudgetHandle, Consumed, Governed, HandleGuard, Interrupted, Resource,
};
pub use counters::{
    counter_add, counter_bump, counter_max, counter_value, flush_thread_counters, reset_counters,
    snapshot, thread_counter_total, CounterSnapshot,
};
pub use pool::run_indexed;
pub use sink::{check_span_nesting, clear_sink, set_sink, Event, MemorySink, Sink};
pub use span::{current_depth, now_ns, span, time, SpanGuard};
