//! Structured event sink: an optional process-global subscriber that
//! receives every span transition and counter update as a typed [`Event`].
//!
//! When no sink is installed (the default), event construction is skipped
//! entirely — [`emit`] takes a closure and checks an atomic flag first, so
//! the hot path costs one relaxed load.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// One observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span was entered.
    SpanEnter {
        /// Span name.
        name: String,
        /// Nesting depth at entry (0 = outermost).
        depth: usize,
        /// Nanoseconds since the process-local epoch.
        at_ns: u64,
    },
    /// A span was exited.
    SpanExit {
        /// Span name.
        name: String,
        /// Nesting depth the span was entered at.
        depth: usize,
        /// Wall-clock duration of the span in nanoseconds.
        dur_ns: u64,
    },
    /// A counter was bumped.
    Counter {
        /// Counter name.
        name: String,
        /// Amount added by this update.
        delta: u64,
        /// Counter value after the update.
        total: u64,
    },
}

impl Event {
    /// JSON rendering used by `--trace-json`.
    pub fn to_json(&self) -> Json {
        match self {
            Event::SpanEnter { name, depth, at_ns } => Json::obj([
                ("type", Json::Str("span_enter".into())),
                ("name", Json::Str(name.clone())),
                ("depth", Json::UInt(*depth as u64)),
                ("at_ns", Json::UInt(*at_ns)),
            ]),
            Event::SpanExit {
                name,
                depth,
                dur_ns,
            } => Json::obj([
                ("type", Json::Str("span_exit".into())),
                ("name", Json::Str(name.clone())),
                ("depth", Json::UInt(*depth as u64)),
                ("dur_ns", Json::UInt(*dur_ns)),
            ]),
            Event::Counter { name, delta, total } => Json::obj([
                ("type", Json::Str("counter".into())),
                ("name", Json::Str(name.clone())),
                ("delta", Json::UInt(*delta)),
                ("total", Json::UInt(*total)),
            ]),
        }
    }
}

/// A subscriber for [`Event`]s. Implementations must be cheap and must not
/// call back into the observability layer (no counters, no spans) or they
/// will recurse.
pub trait Sink: Send + Sync {
    /// Receive one event. Called synchronously on the emitting thread.
    fn record(&self, event: &Event);
}

static SINK_INSTALLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);

/// Install a process-global sink, replacing any previous one.
pub fn set_sink(sink: Arc<dyn Sink>) {
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    SINK_INSTALLED.store(true, Ordering::Release);
}

/// Remove the installed sink, if any.
pub fn clear_sink() {
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    SINK_INSTALLED.store(false, Ordering::Release);
    *slot = None;
}

/// True when a sink is installed (one relaxed-ish atomic load). Lets the
/// buffered counter path fall back to eager flushing so traces stay
/// event-per-update.
pub(crate) fn active() -> bool {
    SINK_INSTALLED.load(Ordering::Acquire)
}

/// Deliver an event to the sink, constructing it only if one is installed.
pub fn emit(make: impl FnOnce() -> Event) {
    if !SINK_INSTALLED.load(Ordering::Acquire) {
        return;
    }
    let sink = {
        let slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
        slot.clone()
    };
    if let Some(sink) = sink {
        sink.record(&make());
    }
}

/// An in-memory sink that buffers every event; the workhorse for tests and
/// for `--trace-json`.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty buffer, ready to install via [`set_sink`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Copy out the buffered events.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drain the buffer, returning everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Check that a sequence of span events is properly nested: every exit
/// matches the most recent unmatched enter, and depths are consistent.
/// Returns the number of matched enter/exit pairs, or an error description.
pub fn check_span_nesting(events: &[Event]) -> Result<usize, String> {
    let mut stack: Vec<(&str, usize)> = Vec::new();
    let mut matched = 0;
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::SpanEnter { name, depth, .. } => {
                if *depth != stack.len() {
                    return Err(format!(
                        "event {i}: enter '{name}' at depth {depth}, expected {}",
                        stack.len()
                    ));
                }
                stack.push((name, *depth));
            }
            Event::SpanExit { name, depth, .. } => match stack.pop() {
                Some((top, top_depth)) if top == name && top_depth == *depth => {
                    matched += 1;
                }
                Some((top, _)) => {
                    return Err(format!(
                        "event {i}: exit '{name}' but top of stack is '{top}'"
                    ))
                }
                None => return Err(format!("event {i}: exit '{name}' with empty stack")),
            },
            Event::Counter { .. } => {}
        }
    }
    if let Some((open, _)) = stack.last() {
        return Err(format!("span '{open}' never exited"));
    }
    Ok(matched)
}
