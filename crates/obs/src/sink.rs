//! Structured event sink: an optional process-global subscriber that
//! receives every span transition, counter update, and interrupt as a
//! typed [`TraceEvent`].
//!
//! When no sink is installed (the default), event construction is skipped
//! entirely — [`emit`] takes a closure and checks an atomic flag first, so
//! the hot path costs one relaxed load. When a sink *is* installed, events
//! are stamped with the emitting thread's stable id and a monotone
//! per-thread ordinal, then buffered thread-locally (see [`crate::trace`])
//! and delivered in batches — the sink mutex is never taken on a per-event
//! hot path. Consequence: the sink observes events in per-thread order
//! only; cross-thread interleaving in the delivered stream reflects flush
//! timing, not wall-clock order. Consumers must group by
//! [`TraceEvent::thread`] (one "track" per thread) before reasoning about
//! order; `at_ns` timestamps share one process-wide clock for cross-track
//! alignment.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// One observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span was entered.
    SpanEnter {
        /// Span name.
        name: String,
        /// Nesting depth at entry (0 = outermost).
        depth: usize,
        /// Nanoseconds since the process-local epoch.
        at_ns: u64,
    },
    /// A span was exited.
    SpanExit {
        /// Span name.
        name: String,
        /// Nesting depth the span was entered at.
        depth: usize,
        /// Nanoseconds since the process-local epoch, at exit.
        at_ns: u64,
        /// Wall-clock duration of the span in nanoseconds.
        dur_ns: u64,
    },
    /// A counter was bumped.
    Counter {
        /// Counter name.
        name: String,
        /// Amount added by this update.
        delta: u64,
        /// Counter value after the update. For buffered hot counters
        /// ([`crate::counter_bump`]) this is the emitting *thread's*
        /// lifetime total; for [`crate::counter_add`] it is the global
        /// registry value.
        total: u64,
        /// Nanoseconds since the process-local epoch.
        at_ns: u64,
    },
    /// A point event with no duration — e.g. a budget trip.
    Instant {
        /// Event name (e.g. `govern.interrupt.deadline`).
        name: String,
        /// Nanoseconds since the process-local epoch.
        at_ns: u64,
    },
}

impl Event {
    /// The event's timestamp (exit time for [`Event::SpanExit`]).
    pub fn at_ns(&self) -> u64 {
        match self {
            Event::SpanEnter { at_ns, .. }
            | Event::SpanExit { at_ns, .. }
            | Event::Counter { at_ns, .. }
            | Event::Instant { at_ns, .. } => *at_ns,
        }
    }

    /// JSON rendering used by `--trace-json` (see [`TraceEvent::to_json`]
    /// for the provenance-stamped form actually written to files).
    pub fn to_json(&self) -> Json {
        match self {
            Event::SpanEnter { name, depth, at_ns } => Json::obj([
                ("type", Json::Str("span_enter".into())),
                ("name", Json::Str(name.clone())),
                ("depth", Json::UInt(*depth as u64)),
                ("at_ns", Json::UInt(*at_ns)),
            ]),
            Event::SpanExit {
                name,
                depth,
                at_ns,
                dur_ns,
            } => Json::obj([
                ("type", Json::Str("span_exit".into())),
                ("name", Json::Str(name.clone())),
                ("depth", Json::UInt(*depth as u64)),
                ("at_ns", Json::UInt(*at_ns)),
                ("dur_ns", Json::UInt(*dur_ns)),
            ]),
            Event::Counter {
                name,
                delta,
                total,
                at_ns,
            } => Json::obj([
                ("type", Json::Str("counter".into())),
                ("name", Json::Str(name.clone())),
                ("delta", Json::UInt(*delta)),
                ("total", Json::UInt(*total)),
                ("at_ns", Json::UInt(*at_ns)),
            ]),
            Event::Instant { name, at_ns } => Json::obj([
                ("type", Json::Str("instant".into())),
                ("name", Json::Str(name.clone())),
                ("at_ns", Json::UInt(*at_ns)),
            ]),
        }
    }
}

/// An [`Event`] stamped with its emitting thread's provenance.
///
/// `thread` is a small stable id assigned in first-emission order (the
/// main thread is almost always 0); `ordinal` increments per emitting
/// thread, so `(thread, ordinal)` totally orders each thread's events —
/// a *track* — even after batched delivery interleaves threads. Order
/// across tracks is **not** meaningful; align tracks by `at_ns` instead.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Stable id of the emitting thread (dense, from 0).
    pub thread: u64,
    /// Position of this event in the emitting thread's stream (from 0).
    pub ordinal: u64,
    /// The event itself.
    pub event: Event,
}

impl TraceEvent {
    /// JSON rendering used by `--trace-json`: the event object with
    /// `thread` and `ordinal` fields prepended.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("thread".to_owned(), Json::UInt(self.thread)),
            ("ordinal".to_owned(), Json::UInt(self.ordinal)),
        ];
        if let Json::Obj(rest) = self.event.to_json() {
            fields.extend(rest);
        }
        Json::Obj(fields)
    }
}

/// A subscriber for [`TraceEvent`]s. Implementations must be cheap and
/// must not call back into the observability layer (no counters, no
/// spans) or they will recurse.
pub trait Sink: Send + Sync {
    /// Receive one event. Called on the emitting thread, in batches at
    /// flush points — not synchronously per event.
    fn record(&self, event: &TraceEvent);
}

static SINK_INSTALLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);

/// Install a process-global sink, replacing any previous one.
pub fn set_sink(sink: Arc<dyn Sink>) {
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    SINK_INSTALLED.store(true, Ordering::Release);
}

/// Remove the installed sink, if any. The calling thread's buffered
/// events are flushed to the outgoing sink first; other threads flush on
/// their own span/pool exits, so clear the sink only after joining any
/// workers whose events you want.
pub fn clear_sink() {
    crate::trace::flush_thread_events();
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    SINK_INSTALLED.store(false, Ordering::Release);
    *slot = None;
}

/// Queue an event for the sink, constructing it only if one is installed.
/// The event lands in the emitting thread's local buffer; see
/// [`crate::trace::flush_thread_events`] for when batches are delivered.
pub fn emit(make: impl FnOnce() -> Event) {
    if !SINK_INSTALLED.load(Ordering::Acquire) {
        return;
    }
    crate::trace::buffer_event(make());
}

/// Deliver a flushed batch to the installed sink, if still present.
pub(crate) fn deliver(batch: &[TraceEvent]) {
    let sink = {
        let slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
        slot.clone()
    };
    if let Some(sink) = sink {
        for event in batch {
            sink.record(event);
        }
    }
}

/// An in-memory sink that buffers every event; the workhorse for tests
/// and for the CLI's `--trace-json`/`--trace-chrome`/`--flame` exporters.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty buffer, ready to install via [`set_sink`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Copy out the buffered events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drain the buffer, returning everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Check that a single-track sequence of span events is properly nested:
/// every exit matches the most recent unmatched enter, and depths are
/// consistent. Returns the number of matched enter/exit pairs, or an
/// error description. For multi-thread streams, split by track first or
/// use [`crate::trace::check_track_nesting`].
pub fn check_span_nesting(events: &[Event]) -> Result<usize, String> {
    let mut stack: Vec<(&str, usize)> = Vec::new();
    let mut matched = 0;
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::SpanEnter { name, depth, .. } => {
                if *depth != stack.len() {
                    return Err(format!(
                        "event {i}: enter '{name}' at depth {depth}, expected {}",
                        stack.len()
                    ));
                }
                stack.push((name, *depth));
            }
            Event::SpanExit { name, depth, .. } => match stack.pop() {
                Some((top, top_depth)) if top == name && top_depth == *depth => {
                    matched += 1;
                }
                Some((top, _)) => {
                    return Err(format!(
                        "event {i}: exit '{name}' but top of stack is '{top}'"
                    ))
                }
                None => return Err(format!("event {i}: exit '{name}' with empty stack")),
            },
            Event::Counter { .. } | Event::Instant { .. } => {}
        }
    }
    if let Some((open, _)) = stack.last() {
        return Err(format!("span '{open}' never exited"));
    }
    Ok(matched)
}
