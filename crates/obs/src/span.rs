//! Hierarchical timing spans with RAII guards.
//!
//! A span brackets one decision procedure: entering pushes onto a
//! thread-local stack (so nesting depth is race-free), and dropping the
//! guard pops it, accumulates `span.<name>.calls` and `span.<name>.ns`
//! counters, and reports enter/exit events to the installed sink.

use crate::counters::counter_add;
use crate::sink::{emit, Event};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Nanoseconds since the first observability call in this process. Only
/// differences are meaningful.
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn current_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// Enter a named span; the returned guard closes it on drop.
pub fn span(name: &'static str) -> SpanGuard {
    let depth = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(name);
        stack.len() - 1
    });
    emit(|| Event::SpanEnter {
        name: name.to_owned(),
        depth,
        at_ns: now_ns(),
    });
    SpanGuard {
        name,
        depth,
        started: Instant::now(),
    }
}

/// RAII guard returned by [`span`]. Spans must be dropped in LIFO order
/// (guaranteed by normal scoping); out-of-order drops are a bug and panic in
/// debug builds.
pub struct SpanGuard {
    name: &'static str,
    depth: usize,
    started: Instant,
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The nesting depth this span was entered at (0 = outermost).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let popped = STACK.with(|s| s.borrow_mut().pop());
        debug_assert_eq!(
            popped,
            Some(self.name),
            "span guards dropped out of LIFO order"
        );
        let dur_ns = self.started.elapsed().as_nanos() as u64;
        counter_add(&format!("span.{}.calls", self.name), 1);
        counter_add(&format!("span.{}.ns", self.name), dur_ns.max(1));
        emit(|| Event::SpanExit {
            name: self.name.to_owned(),
            depth: self.depth,
            dur_ns,
        });
        if self.depth == 0 {
            // Leaving the outermost span: publish this thread's buffered
            // hot-counter bumps so `--stats` tables see them.
            crate::counters::flush_thread_counters();
        }
    }
}

/// Time a closure under a named span and return its result.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _guard = span(name);
    f()
}
