//! Hierarchical timing spans with RAII guards.
//!
//! A span brackets one decision procedure: entering pushes onto a
//! thread-local stack (so nesting depth is race-free), and dropping the
//! guard pops it, accumulates `span.<name>.calls` and `span.<name>.ns`
//! counters, and reports enter/exit events to the installed sink.
//!
//! Span exit is allocation-free: the derived counter names are interned
//! once per distinct span name (a process-lifetime leak bounded by the
//! static set of span names) and cached per thread, so the drop path is
//! two [`counter_bump`]s — no `String`, no global lock.

use crate::counters::counter_bump;
use crate::sink::{emit, Event};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Process-global interner mapping a span name to its leaked
/// `span.<name>.calls` / `span.<name>.ns` counter keys. Hit at most once
/// per (thread, span name) thanks to the thread-local cache below.
static INTERNED: Mutex<Option<HashMap<&'static str, (&'static str, &'static str)>>> =
    Mutex::new(None);

thread_local! {
    static KEY_CACHE: RefCell<HashMap<&'static str, (&'static str, &'static str)>> =
        RefCell::new(HashMap::new());
}

fn span_counter_keys(name: &'static str) -> (&'static str, &'static str) {
    KEY_CACHE.with(|cache| {
        if let Some(&keys) = cache.borrow().get(name) {
            return keys;
        }
        let keys = {
            let mut guard = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
            let map = guard.get_or_insert_with(HashMap::new);
            *map.entry(name).or_insert_with(|| {
                (
                    Box::leak(format!("span.{name}.calls").into_boxed_str()),
                    Box::leak(format!("span.{name}.ns").into_boxed_str()),
                )
            })
        };
        cache.borrow_mut().insert(name, keys);
        keys
    })
}

/// Nanoseconds since the first observability call in this process. Only
/// differences are meaningful.
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn current_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// Enter a named span; the returned guard closes it on drop.
pub fn span(name: &'static str) -> SpanGuard {
    let depth = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(name);
        stack.len() - 1
    });
    emit(|| Event::SpanEnter {
        name: name.to_owned(),
        depth,
        at_ns: now_ns(),
    });
    SpanGuard {
        name,
        depth,
        started: Instant::now(),
    }
}

/// RAII guard returned by [`span`]. Spans must be dropped in LIFO order
/// (guaranteed by normal scoping); out-of-order drops are a bug and panic in
/// debug builds.
pub struct SpanGuard {
    name: &'static str,
    depth: usize,
    started: Instant,
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The nesting depth this span was entered at (0 = outermost).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Nanoseconds elapsed since the span was entered.
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let popped = STACK.with(|s| s.borrow_mut().pop());
        debug_assert_eq!(
            popped,
            Some(self.name),
            "span guards dropped out of LIFO order"
        );
        let dur_ns = self.started.elapsed().as_nanos() as u64;
        let (calls_key, ns_key) = span_counter_keys(self.name);
        counter_bump(calls_key, 1);
        counter_bump(ns_key, dur_ns.max(1));
        emit(|| Event::SpanExit {
            name: self.name.to_owned(),
            depth: self.depth,
            at_ns: now_ns(),
            dur_ns,
        });
        if self.depth == 0 {
            // Leaving the outermost span: publish this thread's buffered
            // hot-counter bumps, histogram observations, and trace events
            // so `--stats` tables and sinks see them.
            crate::counters::flush_thread_counters();
            crate::histogram::flush_thread_histograms();
            crate::trace::flush_thread_events();
        }
    }
}

/// Time a closure under a named span and return its result.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _guard = span(name);
    f()
}

/// Enter a named span that also records its duration into the named
/// histogram when dropped — the one-liner for "this region is both a
/// timeline span and a latency distribution" (e.g. `cegar.round` /
/// `cegar.round.ns`).
pub fn hist_span(name: &'static str, hist: &'static str) -> HistSpanGuard {
    HistSpanGuard {
        hist,
        guard: span(name),
    }
}

/// RAII guard returned by [`hist_span`]: records the elapsed time into
/// its histogram, then closes the span (field drop runs after the
/// explicit drop body).
pub struct HistSpanGuard {
    hist: &'static str,
    guard: SpanGuard,
}

impl HistSpanGuard {
    /// Nanoseconds elapsed since the span was entered.
    pub fn elapsed_ns(&self) -> u64 {
        self.guard.elapsed_ns()
    }
}

impl Drop for HistSpanGuard {
    fn drop(&mut self) {
        crate::histogram::hist_record(self.hist, self.guard.elapsed_ns());
    }
}
