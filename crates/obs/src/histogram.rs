//! Log-bucketed latency histograms with a thread-buffered registry.
//!
//! Counters say *how many* oracle calls a decision procedure made;
//! histograms say how those calls were *distributed* — a Δᵖ₃[O(log n)]
//! binary search and a Σᵖ₂ CEGAR loop can bill the same `sat.solves`
//! while their per-call hardness differs by orders of magnitude. Each
//! histogram is HDR-style: values land in logarithmic buckets with
//! [`SUB_BUCKETS`] linear sub-buckets per octave, giving a bounded
//! relative error of `1/SUB_BUCKETS` (~3%, i.e. roughly two significant
//! digits) across the full `u64` range with at most [`MAX_BUCKETS`]
//! buckets and no allocation beyond one lazily-grown `Vec<u64>`.
//!
//! The process-global registry mirrors the interned-counter design in
//! [`crate::counters`]: [`hist_record`] takes a `&'static str` name and
//! accumulates into a per-thread buffer (no global lock on the hot
//! path); buffers merge into the registry on
//! [`flush_thread_histograms`], called from the same flush points as
//! counters (outermost span exit, worker-pool exit, read side).

use crate::json::Json;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Sub-bucket resolution: each power-of-two octave is split into this
/// many linear sub-buckets, bounding relative bucket width to ~3.1%.
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = 5;

/// Upper bound on [`bucket_index`] over all of `u64` (exclusive).
pub const MAX_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB_BUCKETS as usize;

/// The bucket a value lands in. Monotone in `v`; values below
/// [`SUB_BUCKETS`] get exact singleton buckets.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let high = 63 - v.leading_zeros(); // highest set bit, >= SUB_BITS
    let shift = high - SUB_BITS;
    let sub = (v >> shift) & (SUB_BUCKETS - 1);
    (((shift + 1) as usize) << SUB_BITS) | sub as usize
}

/// Inclusive lower bound of bucket `i`: the smallest value mapping to it.
pub fn bucket_lower(i: usize) -> u64 {
    let e = (i >> SUB_BITS) as u32;
    let sub = (i as u64) & (SUB_BUCKETS - 1);
    if e == 0 {
        sub
    } else {
        (SUB_BUCKETS + sub) << (e - 1)
    }
}

/// Exclusive upper bound of bucket `i`. The topmost bucket's true bound
/// is 2⁶⁴, which saturates to `u64::MAX` (so for that single bucket the
/// bound is inclusive).
pub fn bucket_upper(i: usize) -> u64 {
    let e = (i >> SUB_BITS) as u32;
    if e == 0 {
        bucket_lower(i) + 1
    } else {
        bucket_lower(i).saturating_add(1u64 << (e - 1))
    }
}

/// One log-bucketed distribution: bucket counts plus exact count, sum,
/// min and max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` observations of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = bucket_index(value);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] = self.counts[i].saturating_add(n);
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Fold another histogram into this one. Exact for counts and sum;
    /// min/max merge exactly too.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot = slot.saturating_add(c);
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.max = self.max.max(other.max);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: the largest value of the
    /// bucket holding the ⌈q·count⌉-th smallest observation, clamped to
    /// the recorded min/max (so `quantile(0.0)` is the min and
    /// `quantile(1.0)` the max). Accurate to one bucket width (~3%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                // Highest value representable by this bucket, clamped to
                // the exact observed range.
                let hi = bucket_upper(i).saturating_sub(1);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// JSON rendering: summary statistics plus the non-empty buckets as
    /// `[lower, count]` pairs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::UInt(bucket_lower(i)), Json::UInt(c)]))
            .collect();
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("min", Json::UInt(self.min())),
            ("max", Json::UInt(self.max)),
            ("p50", Json::UInt(self.quantile(0.50))),
            ("p90", Json::UInt(self.quantile(0.90))),
            ("p99", Json::UInt(self.quantile(0.99))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

static HISTS: Mutex<BTreeMap<&'static str, Histogram>> = Mutex::new(BTreeMap::new());

fn with_hists<R>(f: impl FnOnce(&mut BTreeMap<&'static str, Histogram>) -> R) -> R {
    let mut guard = HISTS.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

/// Per-thread buffer mirroring `counters::LocalBuf`: interned name slots
/// and local histograms not yet merged into the registry.
#[derive(Default)]
struct LocalHists {
    slots: HashMap<&'static str, usize>,
    names: Vec<&'static str>,
    hists: Vec<Histogram>,
    dirty: bool,
}

thread_local! {
    static LOCAL: RefCell<LocalHists> = RefCell::new(LocalHists::default());
}

/// Record one observation into the named histogram via this thread's
/// buffer: no global lock and no allocation on the hot path (after the
/// first observation of each name per thread). The registry observes it
/// at the next [`flush_thread_histograms`].
pub fn hist_record(name: &'static str, value: u64) {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        let i = match buf.slots.get(name) {
            Some(&i) => i,
            None => {
                let i = buf.names.len();
                buf.names.push(name);
                buf.hists.push(Histogram::new());
                buf.slots.insert(name, i);
                i
            }
        };
        buf.hists[i].record(value);
        buf.dirty = true;
    });
}

/// Merge this thread's buffered observations into the global registry.
/// Cheap when nothing is pending. Called automatically on outermost span
/// exit, on worker-pool thread exit, and by the read-side functions for
/// the calling thread.
pub fn flush_thread_histograms() {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        if !buf.dirty {
            return;
        }
        buf.dirty = false;
        let names = std::mem::take(&mut buf.names);
        with_hists(|map| {
            for (i, name) in names.iter().enumerate() {
                if buf.hists[i].is_empty() {
                    continue;
                }
                map.entry(name).or_default().merge(&buf.hists[i]);
                buf.hists[i] = Histogram::new();
            }
        });
        buf.names = names;
    });
}

/// Reset the whole registry, including the calling thread's pending
/// buffer. Used by the CLI between independent runs and by tests.
pub fn reset_histograms() {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        buf.dirty = false;
        buf.hists.iter_mut().for_each(|h| *h = Histogram::new());
    });
    with_hists(|map| map.clear());
}

/// An immutable copy of every named histogram at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    values: BTreeMap<String, Histogram>,
}

/// Capture the current state of every histogram. Flushes the calling
/// thread's buffer first so single-threaded before/after reads are exact.
pub fn hist_snapshot() -> HistogramSnapshot {
    flush_thread_histograms();
    HistogramSnapshot {
        values: with_hists(|map| {
            map.iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect()
        }),
    }
}

impl HistogramSnapshot {
    /// The named histogram, if any value was ever recorded under it.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.values.get(name)
    }

    /// Total observation count under `name` (0 when absent).
    pub fn count(&self, name: &str) -> u64 {
        self.values.get(name).map_or(0, Histogram::count)
    }

    /// Whether no histogram has any data.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All histograms in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Render as a JSON object `{name: {count, sum, p50, ...}, ...}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.values
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        )
    }

    /// Render as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        let width = self
            .values
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(9);
        let mut out = String::new();
        out.push_str(&format!(
            "{:width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "histogram", "count", "min", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &self.values {
            out.push_str(&format!(
                "{name:width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                h.count(),
                h.min(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — the property tests need arbitrary
    /// values without external crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    fn interesting_values() -> Vec<u64> {
        let mut vals = vec![
            0,
            1,
            2,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            u64::MAX - 1,
            u64::MAX,
        ];
        for bit in 0..64 {
            let p = 1u64 << bit;
            vals.extend([p.saturating_sub(1), p, p.saturating_add(1)]);
        }
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for _ in 0..10_000 {
            let v = rng.next();
            // Mix full-range and small values.
            vals.push(v);
            vals.push(v >> (v % 64));
        }
        vals
    }

    #[test]
    fn bucket_bounds_roundtrip() {
        for v in interesting_values() {
            let i = bucket_index(v);
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            assert!(lo <= v, "lower({i}) = {lo} > {v}");
            assert!(
                v < hi || hi == u64::MAX,
                "upper({i}) = {hi} <= {v} (non-saturated)"
            );
            assert!(i < MAX_BUCKETS, "index {i} for {v} exceeds MAX_BUCKETS");
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut vals = interesting_values();
        vals.sort_unstable();
        for w in vals.windows(2) {
            assert!(
                bucket_index(w[0]) <= bucket_index(w[1]),
                "index({}) > index({})",
                w[0],
                w[1]
            );
        }
        // And bucket bounds tile the line: upper(i) == lower(i+1).
        for i in 0..MAX_BUCKETS - 1 {
            assert_eq!(bucket_upper(i), bucket_lower(i + 1), "gap after bucket {i}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in interesting_values() {
            if v < SUB_BUCKETS {
                continue; // exact buckets
            }
            let i = bucket_index(v);
            let width = bucket_upper(i).saturating_sub(bucket_lower(i));
            // Bucket width is at most lower/SUB_BUCKETS ⇒ ≤ v/32 ≈ 3.1%.
            assert!(
                width <= bucket_lower(i) / (SUB_BUCKETS / 2),
                "bucket {i} width {width} too wide for lower {}",
                bucket_lower(i)
            );
        }
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((485..=520).contains(&p50), "p50 = {p50}");
        assert!((960..=1000).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(0.0) == 1 && h.quantile(1.0) == 1000);
        assert_eq!(h.mean(), 500);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut rng = Rng(42);
        let vals: Vec<u64> = (0..500).map(|_| rng.next() % 1_000_000).collect();
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { &mut left } else { &mut right }.record(v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn thread_buffers_merge_into_registry() {
        // Registry is global: use a unique name and diff counts.
        let before = hist_snapshot().count("test.hist.threads");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..100 {
                        hist_record("test.hist.threads", v);
                    }
                    flush_thread_histograms();
                });
            }
        });
        let after = hist_snapshot().count("test.hist.threads");
        assert_eq!(after - before, 400);
    }

    #[test]
    fn json_exposes_quantiles() {
        let mut h = Histogram::new();
        h.record_n(10, 9);
        h.record(1_000_000);
        let json = h.to_json();
        assert_eq!(
            json.get("count").and_then(crate::json::Json::as_u64),
            Some(10)
        );
        assert_eq!(
            json.get("p50").and_then(crate::json::Json::as_u64),
            Some(10)
        );
        let p99 = json.get("p99").and_then(crate::json::Json::as_u64).unwrap();
        assert!(p99 >= 900_000, "p99 = {p99}");
    }
}
