//! Named monotonic counters with a process-global registry.
//!
//! Counters are the cheap, always-on half of the observability layer: every
//! oracle invocation, propagation, and model enumeration bumps one. Names are
//! dot-separated taxonomies (`sat.solves`, `models.circ.candidates`,
//! `span.gcwa.infers_literal.ns`) documented in `docs/OBSERVABILITY.md`.
//!
//! The registry is a `Mutex<BTreeMap>` — deliberately boring. Exact per-call
//! figures used in answers come from the thread-local `Cost`/`Stats`
//! structures; the global registry feeds human-facing `--stats` tables and
//! `--trace-json` files, where cross-thread interleaving is acceptable.
//!
//! Hot counters (`route.*`, `govern.*`, the per-bump sites inside solve
//! loops) go through [`counter_bump`] instead of [`counter_add`]: the name
//! is a `&'static str` interned into a per-thread slot table, and deltas
//! accumulate in a thread-local buffer — no global lock, no `String`
//! allocation per bump. Buffers flush into the registry on
//! [`flush_thread_counters`] (called on outermost span exit, worker-pool
//! exit, and by [`snapshot`]/[`counter_value`] for the calling thread).
//! With a trace sink installed, each bump additionally queues a
//! per-update `Counter` event into the thread-local trace buffer — the
//! event's `total` is the emitting *thread's* lifetime total, so traces
//! stay event-per-update without the global registry lock on the hot
//! path. Each thread also keeps a monotone lifetime total per bumped
//! counter ([`thread_counter_total`]), which gives race-free
//! before/after probes on a single thread even while other workers bump
//! the same names.

use crate::json::Json;
use crate::sink::{emit, Event};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

fn with_counters<R>(f: impl FnOnce(&mut BTreeMap<String, u64>) -> R) -> R {
    // Counter updates cannot panic while the lock is held, so a poisoned
    // mutex only ever carries valid data; recover rather than propagate.
    let mut guard = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

/// Add `delta` to the named counter, creating it at zero if absent.
pub fn counter_add(name: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    let total = with_counters(|map| {
        let slot = map.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
        *slot
    });
    emit(|| Event::Counter {
        name: name.to_owned(),
        delta,
        total,
        at_ns: crate::span::now_ns(),
    });
}

/// Per-thread buffer for [`counter_bump`]: interned name slots, pending
/// deltas not yet in the global registry, and monotone lifetime totals.
#[derive(Default)]
struct LocalBuf {
    slots: HashMap<&'static str, usize>,
    names: Vec<&'static str>,
    pending: Vec<u64>,
    totals: Vec<u64>,
    dirty: bool,
}

impl LocalBuf {
    fn slot(&mut self, name: &'static str) -> usize {
        if let Some(&i) = self.slots.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name);
        self.pending.push(0);
        self.totals.push(0);
        self.slots.insert(name, i);
        i
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::default());
}

/// Add `delta` to the named hot counter via this thread's buffer: no
/// global lock and no allocation on the hot path. The global registry
/// observes the total at the next [`flush_thread_counters`]. With a
/// trace sink installed, a per-update `Counter` event is queued into the
/// thread-local trace buffer, carrying this thread's lifetime total.
pub fn counter_bump(name: &'static str, delta: u64) {
    if delta == 0 {
        return;
    }
    let thread_total = LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        let i = buf.slot(name);
        buf.pending[i] = buf.pending[i].saturating_add(delta);
        buf.totals[i] = buf.totals[i].saturating_add(delta);
        buf.dirty = true;
        buf.totals[i]
    });
    emit(|| Event::Counter {
        name: name.to_owned(),
        delta,
        total: thread_total,
        at_ns: crate::span::now_ns(),
    });
}

/// Merge this thread's pending [`counter_bump`] deltas into the global
/// registry. Cheap when nothing is pending. Called automatically on
/// outermost span exit, on worker-pool thread exit, and by the read-side
/// functions for the calling thread.
pub fn flush_thread_counters() {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        if !buf.dirty {
            return;
        }
        buf.dirty = false;
        let names = std::mem::take(&mut buf.names);
        with_counters(|map| {
            for (i, name) in names.iter().enumerate() {
                let p = buf.pending[i];
                if p == 0 {
                    continue;
                }
                let slot = map.entry((*name).to_owned()).or_insert(0);
                *slot = slot.saturating_add(p);
                buf.pending[i] = 0;
            }
        });
        buf.names = names;
        // No events here: each bump already queued its own trace event
        // at update time, so a flush is registry bookkeeping only.
    });
}

/// This thread's monotone lifetime total of a [`counter_bump`]ed counter
/// (flushes do not reset it). Zero if this thread never bumped `name`.
/// The race-free probe for "did *this thread* take route X": diff the
/// value around a call, immune to concurrent workers bumping the same
/// counter.
pub fn thread_counter_total(name: &'static str) -> u64 {
    LOCAL.with(|l| {
        let buf = l.borrow();
        buf.slots.get(name).map_or(0, |&i| buf.totals[i])
    })
}

/// Raise the named counter to at least `value` (a high-water-mark gauge,
/// e.g. peak clause count).
pub fn counter_max(name: &str, value: u64) {
    let changed = with_counters(|map| {
        let slot = map.entry(name.to_owned()).or_insert(0);
        if value > *slot {
            *slot = value;
            true
        } else {
            false
        }
    });
    if changed {
        emit(|| Event::Counter {
            name: name.to_owned(),
            delta: 0,
            total: value,
            at_ns: crate::span::now_ns(),
        });
    }
}

/// Read one counter (zero if it was never touched). Flushes the calling
/// thread's buffered bumps first; other threads' buffers flush on their
/// own span/worker exits.
pub fn counter_value(name: &str) -> u64 {
    flush_thread_counters();
    with_counters(|map| map.get(name).copied().unwrap_or(0))
}

/// Reset the whole registry (including the calling thread's pending
/// buffered bumps; per-thread lifetime totals are monotone and survive).
/// Used by the CLI between independent runs and by tests; library code
/// should prefer [`CounterSnapshot::diff`].
pub fn reset_counters() {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        buf.dirty = false;
        buf.pending.iter_mut().for_each(|p| *p = 0);
    });
    with_counters(|map| map.clear());
}

/// An immutable copy of the registry at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: BTreeMap<String, u64>,
}

/// Capture the current state of every counter. Flushes the calling
/// thread's buffered bumps first so single-threaded before/after diffs
/// are exact.
pub fn snapshot() -> CounterSnapshot {
    flush_thread_counters();
    CounterSnapshot {
        values: with_counters(|map| map.clone()),
    }
}

impl CounterSnapshot {
    /// Value of `name` at snapshot time, zero if it was never bumped.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Whether no counter had been bumped when the snapshot was taken.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Counters gained since `earlier` (saturating; counters reset in
    /// between show as zero, not underflow). Gauges (`*.peak`) keep their
    /// later absolute value since a high-water mark has no meaningful delta.
    pub fn diff(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = BTreeMap::new();
        for (name, &now) in &self.values {
            let delta = if name.ends_with(".peak") {
                now
            } else {
                now.saturating_sub(earlier.get(name))
            };
            if delta > 0 {
                values.insert(name.clone(), delta);
            }
        }
        CounterSnapshot { values }
    }

    /// Render as a JSON object `{name: value, ...}` (keys sorted).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.values
                .iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        )
    }

    /// Render as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        let width = self
            .values
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(7);
        let mut out = String::new();
        out.push_str(&format!("{:width$}  value\n", "counter"));
        for (name, value) in &self.values {
            out.push_str(&format!("{name:width$}  {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialize the tests that reset it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn bump_is_invisible_until_flushed() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_counters();
        counter_bump("test.buffered", 3);
        assert_eq!(
            with_counters(|map| map.get("test.buffered").copied()),
            None,
            "pending bumps stay thread-local"
        );
        flush_thread_counters();
        assert_eq!(
            with_counters(|map| map.get("test.buffered").copied()),
            Some(3)
        );
        // Read-side functions flush implicitly.
        counter_bump("test.buffered", 2);
        assert_eq!(counter_value("test.buffered"), 5);
        counter_bump("test.buffered", 1);
        assert_eq!(snapshot().get("test.buffered"), 6);
    }

    #[test]
    fn thread_totals_are_monotone_and_per_thread() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = thread_counter_total("test.thread_total");
        counter_bump("test.thread_total", 4);
        flush_thread_counters();
        reset_counters();
        counter_bump("test.thread_total", 1);
        assert_eq!(
            thread_counter_total("test.thread_total") - before,
            5,
            "lifetime total survives flush and reset"
        );
        std::thread::spawn(|| {
            assert_eq!(
                thread_counter_total("test.thread_total"),
                0,
                "totals are per-thread"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn flushes_from_many_threads_merge() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_counters();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter_bump("test.merge", 1);
                    }
                    flush_thread_counters();
                });
            }
        });
        assert_eq!(counter_value("test.merge"), 400);
    }
}
