//! Named monotonic counters with a process-global registry.
//!
//! Counters are the cheap, always-on half of the observability layer: every
//! oracle invocation, propagation, and model enumeration bumps one. Names are
//! dot-separated taxonomies (`sat.solves`, `models.circ.candidates`,
//! `span.gcwa.infers_literal.ns`) documented in `docs/OBSERVABILITY.md`.
//!
//! The registry is a `Mutex<BTreeMap>` — deliberately boring. Exact per-call
//! figures used in answers come from the thread-local `Cost`/`Stats`
//! structures; the global registry feeds human-facing `--stats` tables and
//! `--trace-json` files, where cross-thread interleaving is acceptable.

use crate::json::Json;
use crate::sink::{emit, Event};
use std::collections::BTreeMap;
use std::sync::Mutex;

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

fn with_counters<R>(f: impl FnOnce(&mut BTreeMap<String, u64>) -> R) -> R {
    // Counter updates cannot panic while the lock is held, so a poisoned
    // mutex only ever carries valid data; recover rather than propagate.
    let mut guard = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

/// Add `delta` to the named counter, creating it at zero if absent.
pub fn counter_add(name: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    let total = with_counters(|map| {
        let slot = map.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
        *slot
    });
    emit(|| Event::Counter {
        name: name.to_owned(),
        delta,
        total,
    });
}

/// Raise the named counter to at least `value` (a high-water-mark gauge,
/// e.g. peak clause count).
pub fn counter_max(name: &str, value: u64) {
    let changed = with_counters(|map| {
        let slot = map.entry(name.to_owned()).or_insert(0);
        if value > *slot {
            *slot = value;
            true
        } else {
            false
        }
    });
    if changed {
        emit(|| Event::Counter {
            name: name.to_owned(),
            delta: 0,
            total: value,
        });
    }
}

/// Read one counter (zero if it was never touched).
pub fn counter_value(name: &str) -> u64 {
    with_counters(|map| map.get(name).copied().unwrap_or(0))
}

/// Reset the whole registry. Used by the CLI between independent runs and by
/// tests; library code should prefer [`CounterSnapshot::diff`].
pub fn reset_counters() {
    with_counters(|map| map.clear());
}

/// An immutable copy of the registry at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: BTreeMap<String, u64>,
}

/// Capture the current state of every counter.
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        values: with_counters(|map| map.clone()),
    }
}

impl CounterSnapshot {
    /// Value of `name` at snapshot time, zero if it was never bumped.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Whether no counter had been bumped when the snapshot was taken.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Counters gained since `earlier` (saturating; counters reset in
    /// between show as zero, not underflow). Gauges (`*.peak`) keep their
    /// later absolute value since a high-water mark has no meaningful delta.
    pub fn diff(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = BTreeMap::new();
        for (name, &now) in &self.values {
            let delta = if name.ends_with(".peak") {
                now
            } else {
                now.saturating_sub(earlier.get(name))
            };
            if delta > 0 {
                values.insert(name.clone(), delta);
            }
        }
        CounterSnapshot { values }
    }

    /// Render as a JSON object `{name: value, ...}` (keys sorted).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.values
                .iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        )
    }

    /// Render as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        let width = self
            .values
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(7);
        let mut out = String::new();
        out.push_str(&format!("{:width$}  value\n", "counter"));
        for (name, value) in &self.values {
            out.push_str(&format!("{name:width$}  {value}\n"));
        }
        out
    }
}
