//! A zero-dependency, budget-inheriting worker pool.
//!
//! The paper's hard semantics decompose into many independent
//! oracle-heavy subproblems (same-layer splitting components, profile
//! cells, batched queries). This pool runs such job lists on `std`
//! scoped threads with three guarantees the evaluation stack relies on:
//!
//! - **Budget inheritance**: each worker installs the parent thread's
//!   [`crate::budget::BudgetHandle`] on entry, so deadlines, caps,
//!   cancel flags, and fault injection govern workers exactly as they
//!   govern the parent; a trip anywhere stops every thread at its next
//!   checkpoint, and consumption merges into the parent's totals.
//! - **Deterministic merge**: jobs return indexed results and the parent
//!   receives them in submission order, so output is byte-identical to a
//!   sequential run regardless of scheduling.
//! - **Sequential degeneration**: with one thread (or one job) the jobs
//!   run inline on the calling thread, in order — the parallel code path
//!   *is* the sequential code path.
//!
//! Counters: `pool.batches` (parallel batches run), `pool.jobs` (jobs
//! dispatched to workers), `pool.threads.peak` (widest batch). When jobs
//! actually fan out to workers, each job additionally runs under a
//! `pool.job` span (giving every worker track a root in trace timelines)
//! and records its wall time into the `pool.job.ns` histogram; the
//! inline width-1 path stays uninstrumented so the sequential code path
//! keeps its zero-overhead contract.

use crate::budget;
use crate::counters::{counter_bump, counter_max, flush_thread_counters};
use crate::histogram::flush_thread_histograms;
use crate::trace::flush_thread_events;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `jobs` on up to `threads` workers and returns their results in
/// submission order.
///
/// With `threads <= 1` or fewer than two jobs, everything runs inline on
/// the calling thread. Otherwise `min(threads, jobs.len())` scoped
/// workers pull jobs from a shared index, each under the parent's
/// mirrored budget stack; panics in jobs propagate to the caller after
/// all workers finish.
pub fn run_indexed<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let workers = threads.min(n);
    counter_bump("pool.batches", 1);
    counter_bump("pool.jobs", n as u64);
    counter_max("pool.threads.peak", workers as u64);
    let handle = budget::handle();
    let next = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _governed = handle.install();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = jobs[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("each job index is claimed exactly once");
                    let out = {
                        let _job_span = crate::span::hist_span("pool.job", "pool.job.ns");
                        job()
                    };
                    *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                }
                // Publish this worker's buffered hot-counter bumps,
                // histogram observations, and trace events before the
                // parent reads the registry or drains the sink.
                flush_thread_counters();
                flush_thread_histograms();
                flush_thread_events();
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("scope joined every worker, so every slot is filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{charge_oracle_call, checkpoint, Budget, Resource};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 8] {
            let jobs: Vec<_> = (0..32)
                .map(|i| {
                    move || {
                        if i % 3 == 0 {
                            std::thread::yield_now();
                        }
                        i * i
                    }
                })
                .collect();
            let got = run_indexed(threads, jobs);
            let want: Vec<_> = (0..32).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn workers_inherit_the_parent_budget() {
        let _g = Budget::unlimited().with_max_oracle_calls(5).install();
        let jobs: Vec<_> = (0..8)
            .map(|_| || charge_oracle_call().map_err(|e| e.resource))
            .collect();
        let results = run_indexed(4, jobs);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, 5, "the cap splits across workers: {results:?}");
        assert!(results
            .iter()
            .all(|r| matches!(r, Ok(()) | Err(Resource::OracleCalls))));
        // The tripping charge (and any charge racing with it) still
        // increments the shared counter before observing the trip, just
        // as a sequential run records the over-cap charge.
        let merged = crate::budget::consumed().unwrap().oracle_calls;
        assert!(
            (6..=8).contains(&merged),
            "worker charges merged into the parent's totals: {merged}"
        );
    }

    #[test]
    fn parent_cancel_stops_every_worker() {
        let flag = Arc::new(AtomicBool::new(false));
        let _g = Budget::unlimited().with_cancel_flag(flag.clone()).install();
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let flag = flag.clone();
                move || {
                    flag.store(true, std::sync::atomic::Ordering::Relaxed);
                    let mut seen = None;
                    for _ in 0..1_000_000 {
                        if let Err(e) = checkpoint() {
                            seen = Some(e.resource);
                            break;
                        }
                    }
                    seen
                }
            })
            .collect();
        let results = run_indexed(4, jobs);
        assert!(
            results.iter().all(|r| *r == Some(Resource::Cancelled)),
            "every worker observed the typed interruption: {results:?}"
        );
    }

    #[test]
    fn inline_path_runs_without_spawning() {
        let on_parent = std::thread::current().id();
        let jobs: Vec<_> = (0..3)
            .map(|_| move || std::thread::current().id() == on_parent)
            .collect();
        assert!(run_indexed(1, jobs).into_iter().all(|same| same));
    }
}
