//! Trace timelines: per-thread event buffering, Chrome trace-event and
//! folded-stack (flamegraph) exporters, and an aggregated span-tree
//! report.
//!
//! Every emitted [`Event`] is stamped into a [`TraceEvent`] with a dense
//! thread id and a monotone per-thread ordinal, then buffered in a
//! thread-local vector — worker threads never touch the sink mutex per
//! event. Buffers flush (batch-deliver to the installed sink) on
//! outermost span exit, on worker-pool exit, when the buffer fills, and
//! explicitly via [`flush_thread_events`].
//!
//! The flushed stream is a set of *tracks* (one per thread), each
//! internally ordered; the three consumers here respect that:
//!
//! - [`chrome_trace`] renders Chrome trace-event JSON (open in Perfetto
//!   or `chrome://tracing`) with one track per thread — spans as `B`/`E`
//!   pairs, counters as `C` samples, interrupts as instant events.
//! - [`folded_stacks`] renders inferno/FlameGraph folded-stack text:
//!   one `root;child;leaf <ns>` line per distinct stack, where the
//!   values are *exclusive* nanoseconds, so the lines sum to the
//!   inclusive time of the root spans.
//! - [`TraceReport`] aggregates the stream into a span tree with
//!   per-node call counts, inclusive/exclusive time, attributed oracle
//!   calls, and latency quantiles — the `ddb trace` report.

use crate::histogram::Histogram;
use crate::json::Json;
use crate::sink::{Event, TraceEvent};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buffered events per thread before an automatic flush. Big enough that
/// SAT-heavy inner loops amortize the sink mutex, small enough to keep
/// memory bounded when a sink stays installed across a long run.
const FLUSH_THRESHOLD: usize = 4096;

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

struct TraceState {
    thread: Option<u64>,
    ordinal: u64,
    buffer: Vec<TraceEvent>,
}

thread_local! {
    static STATE: RefCell<TraceState> = const {
        RefCell::new(TraceState { thread: None, ordinal: 0, buffer: Vec::new() })
    };
}

/// This thread's stable trace id, assigned on first use in emission
/// order (the main thread is almost always 0).
pub fn trace_thread_id() -> u64 {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        match st.thread {
            Some(t) => t,
            None => {
                let t = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
                st.thread = Some(t);
                t
            }
        }
    })
}

/// Stamp `event` with this thread's id and next ordinal and buffer it.
/// Called by [`crate::sink::emit`] only when a sink is installed.
pub(crate) fn buffer_event(event: Event) {
    let full = STATE.with(|s| {
        let mut st = s.borrow_mut();
        let thread = match st.thread {
            Some(t) => t,
            None => {
                let t = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
                st.thread = Some(t);
                t
            }
        };
        let ordinal = st.ordinal;
        st.ordinal += 1;
        st.buffer.push(TraceEvent {
            thread,
            ordinal,
            event,
        });
        st.buffer.len() >= FLUSH_THRESHOLD
    });
    if full {
        flush_thread_events();
    }
}

/// Deliver this thread's buffered events to the installed sink as one
/// batch (one sink-mutex acquisition). Cheap when the buffer is empty.
/// Called automatically on outermost span exit, worker-pool thread exit,
/// buffer overflow, and [`crate::sink::clear_sink`].
pub fn flush_thread_events() {
    let batch = STATE.with(|s| std::mem::take(&mut s.borrow_mut().buffer));
    if !batch.is_empty() {
        crate::sink::deliver(&batch);
    }
}

/// Check that every track (thread) in `events` is properly nested —
/// per-track exits match the most recent unmatched enter — and return
/// the total number of matched pairs across tracks.
pub fn check_track_nesting(events: &[TraceEvent]) -> Result<usize, String> {
    let mut stacks: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    let mut matched = 0;
    for ev in events {
        let stack = stacks.entry(ev.thread).or_default();
        match &ev.event {
            Event::SpanEnter { name, .. } => stack.push(name),
            Event::SpanExit { name, .. } => match stack.pop() {
                Some(top) if top == name => matched += 1,
                Some(top) => {
                    return Err(format!(
                        "track {}: exit '{name}' but top of stack is '{top}'",
                        ev.thread
                    ))
                }
                None => {
                    return Err(format!(
                        "track {}: exit '{name}' with empty stack",
                        ev.thread
                    ))
                }
            },
            Event::Counter { .. } | Event::Instant { .. } => {}
        }
    }
    for (thread, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("track {thread}: span '{open}' never exited"));
        }
    }
    Ok(matched)
}

fn ts_us(at_ns: u64) -> Json {
    Json::Num(at_ns as f64 / 1000.0)
}

/// Render `events` as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form), loadable in Perfetto or
/// `chrome://tracing`. One track per emitting thread (`tid` is the
/// stable trace thread id, `pid` is always 1): spans become `B`/`E`
/// pairs, counters become `C` samples, instants become `i` events, and
/// each track gets a `thread_name` metadata record.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 4);
    let mut threads: BTreeMap<u64, ()> = BTreeMap::new();
    for ev in events {
        threads.entry(ev.thread).or_default();
        let tid = Json::UInt(ev.thread);
        match &ev.event {
            Event::SpanEnter { name, at_ns, .. } => out.push(Json::obj([
                ("name", Json::Str(name.clone())),
                ("ph", Json::Str("B".into())),
                ("ts", ts_us(*at_ns)),
                ("pid", Json::UInt(1)),
                ("tid", tid),
            ])),
            Event::SpanExit { name, at_ns, .. } => out.push(Json::obj([
                ("name", Json::Str(name.clone())),
                ("ph", Json::Str("E".into())),
                ("ts", ts_us(*at_ns)),
                ("pid", Json::UInt(1)),
                ("tid", tid),
            ])),
            Event::Counter {
                name, total, at_ns, ..
            } => out.push(Json::obj([
                ("name", Json::Str(name.clone())),
                ("ph", Json::Str("C".into())),
                ("ts", ts_us(*at_ns)),
                ("pid", Json::UInt(1)),
                ("tid", tid),
                ("args", Json::obj([("value", Json::UInt(*total))])),
            ])),
            Event::Instant { name, at_ns } => out.push(Json::obj([
                ("name", Json::Str(name.clone())),
                ("ph", Json::Str("i".into())),
                ("ts", ts_us(*at_ns)),
                ("pid", Json::UInt(1)),
                ("tid", tid),
                ("s", Json::Str("t".into())),
            ])),
        }
    }
    for &thread in threads.keys() {
        let label = if thread == 0 {
            "main".to_owned()
        } else {
            format!("worker-{thread}")
        };
        out.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(thread)),
            ("args", Json::obj([("name", Json::Str(label))])),
        ]));
    }
    Json::obj([
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ])
}

/// Render `events` as folded-stack flamegraph text: one
/// `root;child;leaf <ns>` line per distinct span stack, values in
/// *exclusive* nanoseconds, identical stacks (across calls and across
/// tracks) aggregated. Because every span's exclusive time plus its
/// children's inclusive time equals its own inclusive time, the line
/// values sum to the total inclusive time of the root spans — at one
/// thread, exactly the root span's inclusive time. Consume with
/// inferno/FlameGraph: `inferno-flamegraph < out.folded > flame.svg`.
pub fn folded_stacks(events: &[TraceEvent]) -> String {
    struct Frame {
        name: String,
        children_ns: u64,
    }
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut stacks: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
    for ev in events {
        let stack = stacks.entry(ev.thread).or_default();
        match &ev.event {
            Event::SpanEnter { name, .. } => stack.push(Frame {
                name: name.clone(),
                children_ns: 0,
            }),
            Event::SpanExit { name, dur_ns, .. } => {
                let Some(frame) = stack.pop() else { continue };
                if frame.name != *name {
                    // Malformed track: put the frame back and skip.
                    stack.push(frame);
                    continue;
                }
                let exclusive = dur_ns.saturating_sub(frame.children_ns);
                let mut path = String::new();
                for f in stack.iter() {
                    path.push_str(&f.name);
                    path.push(';');
                }
                path.push_str(name);
                *totals.entry(path).or_insert(0) += exclusive;
                if let Some(parent) = stack.last_mut() {
                    parent.children_ns = parent.children_ns.saturating_add(*dur_ns);
                }
            }
            Event::Counter { .. } | Event::Instant { .. } => {}
        }
    }
    let mut out = String::new();
    for (path, ns) in &totals {
        out.push_str(&format!("{path} {ns}\n"));
    }
    out
}

/// One node of the aggregated span tree: all calls that shared the same
/// root-to-leaf span-name path, across tracks.
#[derive(Debug, Clone, Default)]
pub struct TreeNode {
    /// Span name at this path position.
    pub name: String,
    /// Completed calls aggregated into this node.
    pub calls: u64,
    /// Total inclusive (wall-clock) nanoseconds across calls.
    pub inclusive_ns: u64,
    /// Total exclusive nanoseconds (inclusive minus children's
    /// inclusive time spent while this node was innermost).
    pub exclusive_ns: u64,
    /// SAT oracle calls (`sat.solves` counter deltas) attributed to this
    /// node while it was the innermost open span on its track.
    pub oracle_calls: u64,
    /// Distribution of per-call inclusive durations.
    pub latency: Histogram,
    /// Child nodes, one per distinct child span name.
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    fn child_mut(&mut self, name: &str) -> &mut TreeNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(TreeNode {
            name: name.to_owned(),
            ..TreeNode::default()
        });
        self.children.last_mut().expect("just pushed")
    }

    /// Parent inclusive time is at least the sum of its children's —
    /// spans nest, so a child's wall interval lies inside its parent's.
    pub fn is_monotone(&self) -> bool {
        let child_sum: u64 = self.children.iter().map(|c| c.inclusive_ns).sum();
        self.inclusive_ns >= child_sum && self.children.iter().all(TreeNode::is_monotone)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("calls", Json::UInt(self.calls)),
            ("inclusive_ns", Json::UInt(self.inclusive_ns)),
            ("exclusive_ns", Json::UInt(self.exclusive_ns)),
            ("oracle_calls", Json::UInt(self.oracle_calls)),
            ("p50_ns", Json::UInt(self.latency.quantile(0.50))),
            ("p90_ns", Json::UInt(self.latency.quantile(0.90))),
            ("p99_ns", Json::UInt(self.latency.quantile(0.99))),
            (
                "children",
                Json::Arr(self.children.iter().map(TreeNode::to_json).collect()),
            ),
        ])
    }
}

/// Aggregated span-tree report over a trace: the `ddb trace` payload.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Synthetic root; its children are the observed root spans.
    root: TreeNode,
}

impl TraceReport {
    /// Replay `events` track by track and aggregate every completed span
    /// into a tree keyed by the span-name path from the track root.
    /// `sat.solves` counter deltas are attributed to the innermost open
    /// span on the emitting track.
    pub fn build(events: &[TraceEvent]) -> Self {
        struct Open {
            path: Vec<String>,
            children_ns: u64,
            oracle: u64,
        }
        let mut root = TreeNode::default();
        let mut stacks: BTreeMap<u64, Vec<Open>> = BTreeMap::new();
        for ev in events {
            let stack = stacks.entry(ev.thread).or_default();
            match &ev.event {
                Event::SpanEnter { name, .. } => {
                    let mut path = stack.last().map(|o| o.path.clone()).unwrap_or_default();
                    path.push(name.clone());
                    stack.push(Open {
                        path,
                        children_ns: 0,
                        oracle: 0,
                    });
                }
                Event::SpanExit { name, dur_ns, .. } => {
                    let Some(open) = stack.pop() else { continue };
                    if open.path.last().map(String::as_str) != Some(name.as_str()) {
                        stack.push(open);
                        continue;
                    }
                    let mut node = &mut root;
                    for part in &open.path {
                        node = node.child_mut(part);
                    }
                    node.calls += 1;
                    node.inclusive_ns += dur_ns;
                    node.exclusive_ns += dur_ns.saturating_sub(open.children_ns);
                    node.oracle_calls += open.oracle;
                    node.latency.record(*dur_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.children_ns = parent.children_ns.saturating_add(*dur_ns);
                    }
                }
                Event::Counter { name, delta, .. } => {
                    if name == "sat.solves" {
                        if let Some(open) = stack.last_mut() {
                            open.oracle += delta;
                        }
                    }
                }
                Event::Instant { .. } => {}
            }
        }
        TraceReport { root }
    }

    /// The observed root spans (children of the synthetic root).
    pub fn roots(&self) -> &[TreeNode] {
        &self.root.children
    }

    /// Total oracle calls attributed anywhere in the tree.
    pub fn oracle_calls(&self) -> u64 {
        fn sum(n: &TreeNode) -> u64 {
            n.oracle_calls + n.children.iter().map(sum).sum::<u64>()
        }
        sum(&self.root)
    }

    /// Total calls recorded under the given span name, anywhere in the
    /// tree (e.g. `sat.solve` to cross-check against the `sat.solves`
    /// counter).
    pub fn calls_of(&self, name: &str) -> u64 {
        fn walk(n: &TreeNode, name: &str) -> u64 {
            let own = if n.name == name { n.calls } else { 0 };
            own + n.children.iter().map(|c| walk(c, name)).sum::<u64>()
        }
        walk(&self.root, name)
    }

    /// Every node's inclusive time dominates the sum of its children's.
    pub fn is_monotone(&self) -> bool {
        self.root.children.iter().all(TreeNode::is_monotone)
    }

    /// Whether no spans were aggregated at all.
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty()
    }

    /// JSON rendering: an array of root-span trees.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.root.children.iter().map(TreeNode::to_json).collect())
    }

    /// Render an aligned, indented tree table. At each level children
    /// are ordered by inclusive time (descending); when `top` is
    /// non-zero only the `top` heaviest children per node are shown,
    /// with an elision line counting the rest.
    pub fn render(&self, top: usize) -> String {
        let mut rows: Vec<(String, &TreeNode)> = Vec::new();
        fn walk<'a>(
            node: &'a TreeNode,
            depth: usize,
            top: usize,
            rows: &mut Vec<(String, &'a TreeNode)>,
        ) {
            let mut kids: Vec<&TreeNode> = node.children.iter().collect();
            kids.sort_by(|a, b| {
                b.inclusive_ns
                    .cmp(&a.inclusive_ns)
                    .then(a.name.cmp(&b.name))
            });
            let shown = if top == 0 {
                kids.len()
            } else {
                top.min(kids.len())
            };
            for child in &kids[..shown] {
                rows.push((format!("{}{}", "  ".repeat(depth), child.name), child));
                walk(child, depth + 1, top, rows);
            }
            if shown < kids.len() {
                let hidden = kids.len() - shown;
                rows.push((
                    format!("{}… {hidden} more", "  ".repeat(depth)),
                    // Sentinel handled by the caller via empty name rows:
                    // reuse the child so columns stay aligned but blank.
                    kids[shown],
                ));
            }
        }
        walk(&self.root, 0, top, &mut rows);
        let name_w = rows
            .iter()
            .map(|(label, _)| label.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        out.push_str(&format!(
            "{:name_w$}  {:>6}  {:>10}  {:>10}  {:>7}  {:>10}  {:>10}  {:>10}\n",
            "span", "calls", "incl", "excl", "oracle", "p50", "p90", "p99"
        ));
        for (label, node) in &rows {
            if label.trim_start().starts_with('…') {
                out.push_str(&format!("{label}\n"));
                continue;
            }
            out.push_str(&format!(
                "{label:name_w$}  {:>6}  {:>10}  {:>10}  {:>7}  {:>10}  {:>10}  {:>10}\n",
                node.calls,
                human_ns(node.inclusive_ns),
                human_ns(node.exclusive_ns),
                node.oracle_calls,
                human_ns(node.latency.quantile(0.50)),
                human_ns(node.latency.quantile(0.90)),
                human_ns(node.latency.quantile(0.99)),
            ));
        }
        out
    }
}

/// Compact nanosecond formatting for tables (`872ns`, `1.24ms`, `3.1s`).
pub fn human_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u64, ordinal: u64, event: Event) -> TraceEvent {
        TraceEvent {
            thread,
            ordinal,
            event,
        }
    }

    fn enter(name: &str, at_ns: u64) -> Event {
        Event::SpanEnter {
            name: name.into(),
            depth: 0,
            at_ns,
        }
    }

    fn exit(name: &str, at_ns: u64, dur_ns: u64) -> Event {
        Event::SpanExit {
            name: name.into(),
            depth: 0,
            at_ns,
            dur_ns,
        }
    }

    /// Two interleaved tracks: main runs `query{solve}`, worker runs
    /// `job{solve}` — delivered out of wall order, as flushes would.
    fn two_track_stream() -> Vec<TraceEvent> {
        vec![
            ev(1, 0, enter("job", 5)),
            ev(1, 1, enter("solve", 10)),
            ev(
                1,
                2,
                Event::Counter {
                    name: "sat.solves".into(),
                    delta: 1,
                    total: 1,
                    at_ns: 12,
                },
            ),
            ev(1, 3, exit("solve", 40, 30)),
            ev(1, 4, exit("job", 50, 45)),
            ev(0, 0, enter("query", 0)),
            ev(0, 1, enter("solve", 20)),
            ev(0, 2, exit("solve", 80, 60)),
            ev(
                0,
                3,
                Event::Instant {
                    name: "govern.interrupt.deadline".into(),
                    at_ns: 90,
                },
            ),
            ev(0, 4, exit("query", 100, 100)),
        ]
    }

    #[test]
    fn track_nesting_counts_pairs_per_track() {
        assert_eq!(check_track_nesting(&two_track_stream()), Ok(4));
        let bad = vec![ev(0, 0, enter("a", 0)), ev(0, 1, exit("b", 1, 1))];
        assert!(check_track_nesting(&bad).is_err());
        let open = vec![ev(0, 0, enter("a", 0))];
        assert!(check_track_nesting(&open).is_err());
    }

    #[test]
    fn chrome_trace_is_balanced_and_parses() {
        let doc = chrome_trace(&two_track_stream());
        let parsed = crate::json::parse(&doc.render()).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
        let mut instants = 0;
        let mut counters = 0;
        for e in events {
            let tid = e.get("tid").and_then(Json::as_u64).unwrap();
            match e.get("ph").and_then(Json::as_str).unwrap() {
                "B" => *depth.entry(tid).or_insert(0) += 1,
                "E" => {
                    let d = depth.entry(tid).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "E before B on track {tid}");
                }
                "C" => counters += 1,
                "i" => instants += 1,
                "M" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced: {depth:?}");
        assert_eq!(depth.len(), 2, "one track per thread");
        assert_eq!((counters, instants), (1, 1));
    }

    #[test]
    fn folded_stacks_sum_to_root_inclusive() {
        let text = folded_stacks(&two_track_stream());
        let mut lines: BTreeMap<&str, u64> = BTreeMap::new();
        for line in text.lines() {
            let (path, ns) = line.rsplit_once(' ').unwrap();
            lines.insert(path, ns.parse().unwrap());
        }
        assert_eq!(lines["query"], 40); // 100 - 60
        assert_eq!(lines["query;solve"], 60);
        assert_eq!(lines["job"], 15); // 45 - 30
        assert_eq!(lines["job;solve"], 30);
        let total: u64 = lines.values().sum();
        assert_eq!(total, 100 + 45, "folded values sum to root inclusive time");
    }

    #[test]
    fn report_aggregates_paths_and_attributes_oracles() {
        let report = TraceReport::build(&two_track_stream());
        assert!(report.is_monotone());
        assert_eq!(report.calls_of("solve"), 2);
        assert_eq!(report.oracle_calls(), 1);
        assert_eq!(report.roots().len(), 2);
        let query = report.roots().iter().find(|r| r.name == "query").unwrap();
        assert_eq!(query.inclusive_ns, 100);
        assert_eq!(query.exclusive_ns, 40);
        assert_eq!(query.children.len(), 1);
        assert_eq!(query.children[0].inclusive_ns, 60);
        // The worker's solve is attributed under job, not merged into
        // query's child: paths are rooted per track.
        let job = report.roots().iter().find(|r| r.name == "job").unwrap();
        assert_eq!(job.children[0].oracle_calls, 1);
        // JSON form parses with the in-repo parser.
        let parsed = crate::json::parse(&report.to_json().render()).unwrap();
        assert_eq!(parsed.as_arr().unwrap().len(), 2);
        // Rendered table has the header and all four span rows.
        let table = report.render(0);
        assert!(table.contains("calls"));
        assert_eq!(table.lines().count(), 5);
        // --top 0-style elision: one child per node max.
        let top = report.render(1);
        assert!(top.contains("… 1 more"));
    }

    #[test]
    fn report_ignores_unbalanced_tails() {
        let mut events = two_track_stream();
        events.push(ev(0, 5, enter("dangling", 200)));
        let report = TraceReport::build(&events);
        assert_eq!(report.calls_of("dangling"), 0);
        assert!(report.is_monotone());
    }
}
