//! A hand-rolled JSON value type with a writer and a small recursive-descent
//! parser. No external dependencies; this is the serialization contract for
//! every trace and metrics file the workspace emits.
//!
//! The writer is total: every [`Json`] value renders to valid JSON text. The
//! parser accepts standard JSON (RFC 8259) with the usual numeric caveat that
//! integers beyond `u64`/`i64` range fall back to `f64`.

use std::fmt::Write as _;

/// A JSON document. Object keys keep insertion order so rendered output is
/// deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The `null` literal.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Non-negative integers — the common case for counters.
    UInt(u64),
    /// Any other number (negative or fractional).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting whole non-negative floats.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation, for human-facing files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        if x.fract() == 0.0 && x.abs() < 9.0e15 {
            let _ = write!(out, "{}", x as i64);
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // JSON has no NaN/Infinity; degrade to null rather than emit
        // unparseable text.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts. The parser is recursive
/// descent, so without a cap a small frame of `[[[[…` would overflow the
/// stack — an abort that no `catch_unwind` fence can contain. The cap also
/// bounds the recursion depth of dropping any *parsed* document (deep
/// trees drop child-first through the derived `Drop`). 64 levels is far
/// beyond anything the workspace emits (traces nest 3–4 deep).
pub const MAX_DEPTH: usize = 64;

/// Parse a complete JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error. Container nesting beyond [`MAX_DEPTH`] is a
/// [`ParseError`], never a stack overflow.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.error("nesting deeper than 64 levels"))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            // hex4 leaves pos past the digits; compensate for
                            // the `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("bad utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.error("expected hex digit")),
            };
            value = value * 16 + d;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_integer = true;
        if self.peek() == Some(b'.') {
            is_integer = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_integer = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("expected number"));
        }
        if is_integer && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Num(-1.5),
            Json::Str(String::new()),
            Json::Str("a \"quote\" and a \\ and \n newline \u{1}".into()),
        ] {
            assert_eq!(parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj([
            ("counters", Json::obj([("sat.solves", Json::UInt(12))])),
            (
                "events",
                Json::Arr(vec![Json::obj([
                    ("type", Json::Str("span_enter".into())),
                    ("depth", Json::UInt(1)),
                ])]),
            ),
            ("ok", Json::Bool(true)),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\u0041\ud83d\ude00b""#).unwrap(),
            Json::Str("aA\u{1F600}b".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "nul"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // 100KB of '[' fits well under any frame-size limit but would
        // blow a recursive parser's stack; it must come back as a typed
        // error. Same for objects and a mixed tower.
        let arrays = "[".repeat(100_000);
        assert!(parse(&arrays).is_err());
        let objects = "{\"k\":".repeat(100_000);
        assert!(parse(&objects).is_err());
        let mixed: String = "[{\"k\":".repeat(50_000);
        assert!(parse(&mixed).is_err());
    }

    #[test]
    fn nesting_up_to_the_cap_parses_and_drops() {
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        let v = parse(&deep).unwrap();
        drop(v);
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&too_deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }
}
