//! Resource governance: deadlines, oracle budgets, cooperative
//! cancellation, and deterministic fault injection.
//!
//! Every decision problem in the paper's tables sits at NP, coNP, or
//! Πᵖ₂ — worst-case exponential for the SAT substrate — so a production
//! caller must be able to bound any call and get a sound three-valued
//! answer instead of a hang. This module is the mechanism: a [`Budget`]
//! is installed on the current thread (RAII, via [`Budget::install`]),
//! and the solve stack calls the cheap [`checkpoint`]/`charge_*`
//! functions at its inner loops. When a limit trips, those functions
//! return a typed [`Interrupted`] error which propagates out with `?` —
//! never a panic — and the per-semantics layer surfaces it as a
//! three-valued `Verdict::Unknown`.
//!
//! Design rules, relied on by the property tests:
//!
//! - **Read-only**: governance never alters solver decisions. A budgeted
//!   run that completes is bit-for-bit identical to an unbudgeted run
//!   (same answers, same oracle-call counts).
//! - **No overhead when inactive**: with no budget installed every
//!   function is a near-free early return.
//! - **Deterministic injection**: [`Budget::fail_after`] trips at an
//!   exact checkpoint index, so a sweep over every index exercises every
//!   interruption point reproducibly.
//! - **Sticky**: once tripped, a governor keeps returning the same
//!   [`Interrupted`] until uninstalled, so unwinding code cannot
//!   accidentally resume past an exhausted budget.
//! - **Cross-thread**: the mutable state of an installed governor lives
//!   behind an `Arc` of atomics, so [`handle`]/[`BudgetHandle::install`]
//!   can mirror the whole governor stack onto worker threads. Workers
//!   charge the *same* counters (caps split atomically across threads),
//!   and a trip on any thread — parent deadline, cancel flag, cap — is
//!   observed by every mirror at its next checkpoint.
//!
//! Each trip increments a `govern.interrupts.<resource>` counter; each
//! uninstall adds the governor's checkpoint count to `govern.checkpoints`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which resource ran out (or which event interrupted the run).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline passed.
    Deadline,
    /// The SAT-solver conflict budget was exhausted.
    Conflicts,
    /// The NP-oracle (SAT solve) call budget was exhausted.
    OracleCalls,
    /// The enumerated-model budget was exhausted.
    Models,
    /// The cooperative cancel flag was raised (Ctrl-C style).
    Cancelled,
    /// A deterministic fault-injection point fired ([`Budget::fail_after`]).
    FaultInjection,
    /// An internal invariant did not hold; reported as an interruption
    /// instead of a panic so callers degrade to `Unknown`.
    Invariant,
}

impl Resource {
    /// Stable lowercase label, used in counter names and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            Resource::Deadline => "deadline",
            Resource::Conflicts => "conflicts",
            Resource::OracleCalls => "oracle_calls",
            Resource::Models => "models",
            Resource::Cancelled => "cancelled",
            Resource::FaultInjection => "fault_injection",
            Resource::Invariant => "invariant",
        }
    }

    /// Non-zero tag for the atomic trip flag (0 means "not tripped").
    fn tag(self) -> u8 {
        match self {
            Resource::Deadline => 1,
            Resource::Conflicts => 2,
            Resource::OracleCalls => 3,
            Resource::Models => 4,
            Resource::Cancelled => 5,
            Resource::FaultInjection => 6,
            Resource::Invariant => 7,
        }
    }

    fn from_tag(tag: u8) -> Option<Resource> {
        Some(match tag {
            1 => Resource::Deadline,
            2 => Resource::Conflicts,
            3 => Resource::OracleCalls,
            4 => Resource::Models,
            5 => Resource::Cancelled,
            6 => Resource::FaultInjection,
            7 => Resource::Invariant,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A run was interrupted before it could produce a definite answer.
///
/// This is the single error type the whole solve stack propagates; the
/// dispatch layer turns it into `Verdict::Unknown`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interrupted {
    /// What tripped.
    pub resource: Resource,
    /// The governor's checkpoint index at the moment of the trip.
    pub checkpoint: u64,
    /// Optional description of partial progress (e.g. models found so
    /// far) attached by the layer that observed the interruption.
    pub partial: Option<String>,
}

impl Interrupted {
    /// An invariant-violation interruption (used where the code once
    /// panicked on states that cannot arise from correct inputs).
    pub fn invariant(what: &str) -> Self {
        counter_trip(Resource::Invariant);
        Interrupted {
            resource: Resource::Invariant,
            checkpoint: consumed().map_or(0, |c| c.checkpoints),
            partial: Some(what.to_owned()),
        }
    }

    /// Attaches a partial-progress description, keeping the first one.
    pub fn with_partial(mut self, partial: String) -> Self {
        self.partial.get_or_insert(partial);
        self
    }
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "interrupted: {} (checkpoint {})",
            self.resource, self.checkpoint
        )?;
        if let Some(p) = &self.partial {
            write!(f, "; {p}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Interrupted {}

/// Result alias for budget-governed computations.
pub type Governed<T> = Result<T, Interrupted>;

/// Resource limits for a governed computation. All limits are optional;
/// [`Budget::unlimited`] never trips (but still counts checkpoints, so
/// it can be used to probe a run's checkpoint total for fault-injection
/// sweeps).
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Relative timeout; converted to a fresh deadline at install time
    /// (so one `Budget` value can govern many runs, each from zero).
    pub timeout: Option<Duration>,
    /// Maximum SAT-solver conflicts across all oracle calls.
    pub max_conflicts: Option<u64>,
    /// Maximum NP-oracle (SAT solve) calls.
    pub max_oracle_calls: Option<u64>,
    /// Maximum models enumerated.
    pub max_models: Option<u64>,
    /// Cooperative cancel flags; raising any of them from another thread
    /// stops the run at its next checkpoint. A plural set so that
    /// [`Budget::intersect`] can keep *both* operands' flags — e.g. a
    /// server-defaults flag and a per-request cancel/shutdown flag —
    /// rather than silently preferring one.
    pub cancel_flags: Vec<Arc<AtomicBool>>,
    /// Deterministic fault injection: trip with
    /// [`Resource::FaultInjection`] once this many checkpoints have
    /// passed (`fail_after(0)` trips at the very first checkpoint).
    pub fail_after: Option<u64>,
}

impl Budget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets a relative timeout (fresh deadline per install).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps total SAT-solver conflicts.
    pub fn with_max_conflicts(mut self, n: u64) -> Self {
        self.max_conflicts = Some(n);
        self
    }

    /// Caps NP-oracle calls.
    pub fn with_max_oracle_calls(mut self, n: u64) -> Self {
        self.max_oracle_calls = Some(n);
        self
    }

    /// Caps enumerated models.
    pub fn with_max_models(mut self, n: u64) -> Self {
        self.max_models = Some(n);
        self
    }

    /// Attaches a cooperative cancel flag (in addition to any already
    /// attached — all of them are consulted at every checkpoint).
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel_flags.push(flag);
        self
    }

    /// Arms deterministic fault injection at checkpoint index `n`.
    pub fn fail_after(mut self, n: u64) -> Self {
        self.fail_after = Some(n);
        self
    }

    /// Pointwise intersection with `other`: the effective limit for every
    /// resource is the *tighter* of the two, so the result never permits
    /// more than either operand. This is the admission-control primitive
    /// for multi-tenant serving — a request's budget is the server's
    /// defaults ∩ the client's declared limits, and a client can only
    /// narrow what the operator configured, never widen it.
    ///
    /// Deadlines/timeouts take the earlier one, caps the smaller one, and
    /// `fail_after` the smaller index. Cancel flags are *unioned* (both
    /// operands' flags keep working — raising any of them trips the
    /// intersected budget), so putting a per-request cancel flag on
    /// either side of the intersection is always safe.
    #[must_use]
    pub fn intersect(&self, other: &Budget) -> Budget {
        fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            }
        }
        let mut cancel_flags = self.cancel_flags.clone();
        for flag in &other.cancel_flags {
            if !cancel_flags.iter().any(|f| Arc::ptr_eq(f, flag)) {
                cancel_flags.push(Arc::clone(flag));
            }
        }
        Budget {
            deadline: tighter(self.deadline, other.deadline),
            timeout: tighter(self.timeout, other.timeout),
            max_conflicts: tighter(self.max_conflicts, other.max_conflicts),
            max_oracle_calls: tighter(self.max_oracle_calls, other.max_oracle_calls),
            max_models: tighter(self.max_models, other.max_models),
            cancel_flags,
            fail_after: tighter(self.fail_after, other.fail_after),
        }
    }

    /// True when no limit is set (install is then pure bookkeeping).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.timeout.is_none()
            && self.max_conflicts.is_none()
            && self.max_oracle_calls.is_none()
            && self.max_models.is_none()
            && self.cancel_flags.is_empty()
            && self.fail_after.is_none()
    }

    /// Installs this budget on the current thread, returning an RAII
    /// guard that uninstalls it on drop. Budgets nest: every installed
    /// governor is consulted at each checkpoint, innermost charged first.
    pub fn install(self) -> BudgetGuard {
        let deadline = match (self.deadline, self.timeout) {
            (Some(d), Some(t)) => Some(d.min(Instant::now() + t)),
            (Some(d), None) => Some(d),
            (None, Some(t)) => Some(Instant::now() + t),
            (None, None) => None,
        };
        let shared = Arc::new(Shared {
            budget: self,
            deadline,
            checkpoints: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            oracle_calls: AtomicU64::new(0),
            models: AtomicU64::new(0),
            tripped: AtomicU8::new(0),
            trip_checkpoint: AtomicU64::new(0),
        });
        GOVERNORS.with(|g| {
            g.borrow_mut().push(Frame {
                shared,
                owned: true,
            });
        });
        BudgetGuard { _private: () }
    }
}

/// Checkpoint/charge totals consumed under a governor so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Consumed {
    /// Checkpoints passed (every `charge_*` call is also a checkpoint).
    pub checkpoints: u64,
    /// SAT-solver conflicts charged.
    pub conflicts: u64,
    /// NP-oracle calls charged.
    pub oracle_calls: u64,
    /// Models charged.
    pub models: u64,
}

/// The cross-thread state of one installed governor: immutable limits
/// plus atomically shared consumption counters and trip flag. Every
/// thread mirroring this governor (via [`BudgetHandle`]) charges the
/// same atomics, so caps split across workers and a trip anywhere is
/// sticky everywhere.
struct Shared {
    budget: Budget,
    deadline: Option<Instant>,
    checkpoints: AtomicU64,
    conflicts: AtomicU64,
    oracle_calls: AtomicU64,
    models: AtomicU64,
    /// `Resource::tag()` of the first trip, or 0 while not tripped.
    tripped: AtomicU8,
    trip_checkpoint: AtomicU64,
}

impl Shared {
    fn consumed(&self) -> Consumed {
        Consumed {
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            oracle_calls: self.oracle_calls.load(Ordering::Relaxed),
            models: self.models.load(Ordering::Relaxed),
        }
    }

    fn current_trip(&self) -> Option<Interrupted> {
        Resource::from_tag(self.tripped.load(Ordering::Acquire)).map(|resource| Interrupted {
            resource,
            checkpoint: self.trip_checkpoint.load(Ordering::Acquire),
            partial: None,
        })
    }

    /// Records the first trip (CAS-guarded so exactly one thread wins and
    /// bumps the `govern.interrupts.*` counter) and returns the sticky
    /// interruption, which may be an earlier trip from another thread.
    fn trip(&self, resource: Resource, checkpoint: u64) -> Interrupted {
        // Publish the checkpoint before the tag so a reader that sees the
        // tag (Acquire) also sees a plausible checkpoint.
        self.trip_checkpoint
            .fetch_max(checkpoint, Ordering::Release);
        match self
            .tripped
            .compare_exchange(0, resource.tag(), Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                counter_trip(resource);
                Interrupted {
                    resource,
                    checkpoint,
                    partial: None,
                }
            }
            Err(_) => self.current_trip().unwrap_or(Interrupted {
                resource,
                checkpoint,
                partial: None,
            }),
        }
    }

    /// The cap-relevant value of one counter: the charging thread's own
    /// post-increment value when this call charged `resource` (so exactly
    /// `max` charges succeed even under cross-thread races), otherwise
    /// the current shared total (monotone, so a trip is always sound).
    fn cap_value(
        &self,
        resource: Resource,
        charged: Option<(Resource, u64)>,
        counter: &AtomicU64,
    ) -> u64 {
        match charged {
            Some((r, v)) if r == resource => v,
            _ => counter.load(Ordering::Relaxed),
        }
    }

    /// Returns the resource that tripped, if any. `coarse` marks the
    /// rarer charge events (oracle calls, models) where the wall clock is
    /// always consulted regardless of the stride. `checkpoints` is this
    /// call's post-increment checkpoint index; `charged` is the counter
    /// this call incremented, with its post-increment value.
    fn check(
        &self,
        checkpoints: u64,
        coarse: bool,
        charged: Option<(Resource, u64)>,
    ) -> Option<Resource> {
        let b = &self.budget;
        if let Some(n) = b.fail_after {
            // `fail_after(n)` lets n checkpoints pass, then trips — so a
            // sweep over 0..total hits every interruption point once.
            if checkpoints > n {
                return Some(Resource::FaultInjection);
            }
        }
        for flag in &b.cancel_flags {
            if flag.load(Ordering::Relaxed) {
                return Some(Resource::Cancelled);
            }
        }
        if let Some(max) = b.max_conflicts {
            if self.cap_value(Resource::Conflicts, charged, &self.conflicts) > max {
                return Some(Resource::Conflicts);
            }
        }
        if let Some(max) = b.max_oracle_calls {
            if self.cap_value(Resource::OracleCalls, charged, &self.oracle_calls) > max {
                return Some(Resource::OracleCalls);
            }
        }
        if let Some(max) = b.max_models {
            if self.cap_value(Resource::Models, charged, &self.models) > max {
                return Some(Resource::Models);
            }
        }
        if let Some(deadline) = self.deadline {
            if (coarse || checkpoints.is_multiple_of(DEADLINE_STRIDE)) && Instant::now() >= deadline
            {
                return Some(Resource::Deadline);
            }
        }
        None
    }
}

/// One entry of a thread's governor stack. `owned` frames were pushed by
/// [`Budget::install`] on this thread and report `govern.checkpoints` on
/// drop; mirror frames (pushed by [`BudgetHandle::install`]) share the
/// same [`Shared`] and report nothing, so totals are never double-counted.
struct Frame {
    shared: Arc<Shared>,
    owned: bool,
}

thread_local! {
    static GOVERNORS: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an installed [`Budget`]; uninstalls on drop.
///
/// Not `Send`: a budget governs the thread that installed it. Worker
/// threads inherit it through [`handle`]/[`BudgetHandle::install`], and
/// must be joined before this guard drops (the pool does this).
pub struct BudgetGuard {
    _private: (),
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        let checkpoints = GOVERNORS.with(|g| {
            g.borrow_mut().pop().map_or(0, |frame| {
                if frame.owned {
                    frame.shared.checkpoints.load(Ordering::Relaxed)
                } else {
                    0
                }
            })
        });
        if checkpoints > 0 {
            crate::counter_bump("govern.checkpoints", checkpoints);
        }
    }
}

/// True when at least one budget is installed on this thread.
pub fn active() -> bool {
    GOVERNORS.with(|g| !g.borrow().is_empty())
}

/// The innermost governor's consumption so far, if one is installed.
/// Under a mirrored stack this is the shared total across all threads
/// charging the same governor.
pub fn consumed() -> Option<Consumed> {
    GOVERNORS.with(|g| g.borrow().last().map(|frame| frame.shared.consumed()))
}

/// A cloneable, `Send + Sync` snapshot of the current thread's governor
/// stack, for handing budgets to worker threads.
///
/// Captured with [`handle`] on the parent; each worker calls
/// [`BudgetHandle::install`] on entry. The mirrored governors share the
/// parent's deadline, cancel flag, caps, and consumption counters, so:
///
/// - caps are split atomically across all threads (the sum of work is
///   bounded, exactly as in a sequential run);
/// - a trip on any thread (parent or worker) is observed by every other
///   thread at its next checkpoint, with the same typed [`Interrupted`];
/// - the parent's [`consumed`] totals after joining workers equal the
///   sum of all threads' charges, deterministically.
#[derive(Clone, Default)]
pub struct BudgetHandle {
    /// Outermost governor first, matching the stack order on the parent.
    frames: Vec<Arc<Shared>>,
}

impl BudgetHandle {
    /// True when the capturing thread had no governors installed
    /// (installing the handle is then a no-op).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Mirrors the captured governor stack onto the current thread,
    /// returning an RAII guard that removes the mirrors on drop. Nested
    /// installs compose: budgets installed on the worker afterwards sit
    /// inside the mirrored stack, exactly as on the parent.
    pub fn install(&self) -> HandleGuard {
        GOVERNORS.with(|g| {
            let mut stack = g.borrow_mut();
            for shared in &self.frames {
                stack.push(Frame {
                    shared: Arc::clone(shared),
                    owned: false,
                });
            }
        });
        HandleGuard {
            count: self.frames.len(),
        }
    }

    /// The sticky interruption of the innermost already-tripped governor,
    /// if any — lets schedulers skip work without installing the handle.
    pub fn tripped(&self) -> Option<Interrupted> {
        self.frames
            .iter()
            .rev()
            .find_map(|shared| shared.current_trip())
    }
}

/// Captures the current thread's governor stack as a [`BudgetHandle`]
/// that worker threads can [`install`](BudgetHandle::install).
pub fn handle() -> BudgetHandle {
    BudgetHandle {
        frames: GOVERNORS.with(|g| {
            g.borrow()
                .iter()
                .map(|frame| Arc::clone(&frame.shared))
                .collect()
        }),
    }
}

/// RAII guard for a mirrored governor stack; removes the mirrors on
/// drop. Not `Send`: it must drop on the thread that installed it.
pub struct HandleGuard {
    count: usize,
}

impl Drop for HandleGuard {
    fn drop(&mut self) {
        GOVERNORS.with(|g| {
            let mut stack = g.borrow_mut();
            for _ in 0..self.count {
                stack.pop();
            }
        });
    }
}

fn counter_trip(resource: Resource) {
    let name = match resource {
        Resource::Deadline => "govern.interrupts.deadline",
        Resource::Conflicts => "govern.interrupts.conflicts",
        Resource::OracleCalls => "govern.interrupts.oracle_calls",
        Resource::Models => "govern.interrupts.models",
        Resource::Cancelled => "govern.interrupts.cancelled",
        Resource::FaultInjection => "govern.interrupts.fault_injection",
        Resource::Invariant => "govern.interrupts.invariant",
    };
    crate::counter_bump(name, 1);
    // Mark the trip on the tripping thread's trace track so timelines
    // show *where* the interruption landed, not just that one happened.
    crate::sink::emit(|| crate::sink::Event::Instant {
        name: name.to_owned(),
        at_ns: crate::span::now_ns(),
    });
}

/// How often (in checkpoints) the wall clock is consulted; cancel flags
/// and count limits are checked at every checkpoint.
const DEADLINE_STRIDE: u64 = 64;

#[derive(Clone, Copy)]
enum Charge {
    None,
    Conflict,
    OracleCall,
    Model,
}

fn drive(charge: Charge) -> Governed<()> {
    GOVERNORS.with(|g| {
        let governors = g.borrow();
        if governors.is_empty() {
            return Ok(());
        }
        let mut result = Ok(());
        for frame in governors.iter().rev() {
            let sh = &*frame.shared;
            if let Some(trip) = sh.current_trip() {
                // Sticky: keep reporting the first trip of the
                // innermost exhausted governor.
                if result.is_ok() {
                    result = Err(trip);
                }
                continue;
            }
            let checkpoints = sh.checkpoints.fetch_add(1, Ordering::Relaxed) + 1;
            let (coarse, charged) = match charge {
                Charge::None => (false, None),
                Charge::Conflict => {
                    let v = sh.conflicts.fetch_add(1, Ordering::Relaxed) + 1;
                    (false, Some((Resource::Conflicts, v)))
                }
                Charge::OracleCall => {
                    let v = sh.oracle_calls.fetch_add(1, Ordering::Relaxed) + 1;
                    (true, Some((Resource::OracleCalls, v)))
                }
                Charge::Model => {
                    let v = sh.models.fetch_add(1, Ordering::Relaxed) + 1;
                    (true, Some((Resource::Models, v)))
                }
            };
            if let Some(resource) = sh.check(checkpoints, coarse, charged) {
                let trip = sh.trip(resource, checkpoints);
                if result.is_ok() {
                    result = Err(trip);
                }
            }
        }
        result
    })
}

/// The cheap per-iteration call sprinkled through search loops. Counts
/// one checkpoint against every installed governor and trips on cancel
/// flags, count limits, injected faults, and (every `DEADLINE_STRIDE`-th
/// call) the wall clock.
pub fn checkpoint() -> Governed<()> {
    drive(Charge::None)
}

/// Charges one SAT-solver conflict (also a checkpoint).
pub fn charge_conflict() -> Governed<()> {
    drive(Charge::Conflict)
}

/// Charges one NP-oracle (SAT solve) call (also a checkpoint; always
/// consults the wall clock).
pub fn charge_oracle_call() -> Governed<()> {
    drive(Charge::OracleCall)
}

/// Charges one enumerated model (also a checkpoint; always consults the
/// wall clock).
pub fn charge_model() -> Governed<()> {
    drive(Charge::Model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_is_free() {
        assert!(!active());
        assert!(checkpoint().is_ok());
        assert!(charge_conflict().is_ok());
        assert!(charge_oracle_call().is_ok());
        assert!(charge_model().is_ok());
        assert_eq!(consumed(), None);
    }

    #[test]
    fn unlimited_budget_counts_but_never_trips() {
        let _g = Budget::unlimited().install();
        for _ in 0..1000 {
            checkpoint().unwrap();
        }
        charge_conflict().unwrap();
        charge_oracle_call().unwrap();
        charge_model().unwrap();
        let c = consumed().unwrap();
        assert_eq!(c.checkpoints, 1003);
        assert_eq!(c.conflicts, 1);
        assert_eq!(c.oracle_calls, 1);
        assert_eq!(c.models, 1);
    }

    #[test]
    fn intersect_takes_the_tighter_limit_per_resource() {
        let server = Budget::unlimited()
            .with_timeout(Duration::from_millis(500))
            .with_max_oracle_calls(100);
        let client = Budget::unlimited()
            .with_timeout(Duration::from_millis(2000))
            .with_max_oracle_calls(10)
            .with_max_models(3)
            .fail_after(7);
        let eff = server.intersect(&client);
        assert_eq!(eff.timeout, Some(Duration::from_millis(500)));
        assert_eq!(eff.max_oracle_calls, Some(10));
        assert_eq!(eff.max_models, Some(3));
        assert_eq!(eff.max_conflicts, None);
        assert_eq!(eff.fail_after, Some(7));
    }

    #[test]
    fn intersect_unions_cancel_flags() {
        let server_flag = Arc::new(AtomicBool::new(false));
        let request_flag = Arc::new(AtomicBool::new(false));
        let with_flag = Budget::unlimited().with_cancel_flag(server_flag.clone());
        let plain = Budget::unlimited();
        assert_eq!(plain.intersect(&with_flag).cancel_flags.len(), 1);
        assert_eq!(with_flag.intersect(&plain).cancel_flags.len(), 1);
        assert!(plain.intersect(&plain).cancel_flags.is_empty());
        // Both operands carry a flag: both survive, and the same flag on
        // both sides is not doubled.
        let defaults = Budget::unlimited().with_cancel_flag(server_flag.clone());
        let request = Budget::unlimited().with_cancel_flag(request_flag.clone());
        assert_eq!(defaults.intersect(&request).cancel_flags.len(), 2);
        assert_eq!(defaults.intersect(&defaults).cancel_flags.len(), 1);
    }

    #[test]
    fn either_sides_cancel_flag_trips_an_intersected_budget() {
        for raise_server_side in [true, false] {
            let server_flag = Arc::new(AtomicBool::new(false));
            let request_flag = Arc::new(AtomicBool::new(false));
            let defaults = Budget::unlimited().with_cancel_flag(server_flag.clone());
            let request = Budget::unlimited().with_cancel_flag(request_flag.clone());
            let _g = defaults.intersect(&request).install();
            checkpoint().unwrap();
            if raise_server_side {
                server_flag.store(true, Ordering::Relaxed);
            } else {
                request_flag.store(true, Ordering::Relaxed);
            }
            assert_eq!(checkpoint().unwrap_err().resource, Resource::Cancelled);
        }
    }

    #[test]
    fn intersected_budget_trips_at_the_tighter_cap() {
        let server = Budget::unlimited().with_max_oracle_calls(2);
        let client = Budget::unlimited().with_max_oracle_calls(50);
        let _g = server.intersect(&client).install();
        charge_oracle_call().unwrap();
        charge_oracle_call().unwrap();
        let err = charge_oracle_call().unwrap_err();
        assert_eq!(err.resource, Resource::OracleCalls);
    }

    #[test]
    fn guard_uninstalls() {
        {
            let _g = Budget::unlimited().install();
            assert!(active());
        }
        assert!(!active());
    }

    #[test]
    fn oracle_call_limit_trips_and_sticks() {
        let _g = Budget::unlimited().with_max_oracle_calls(2).install();
        charge_oracle_call().unwrap();
        charge_oracle_call().unwrap();
        let err = charge_oracle_call().unwrap_err();
        assert_eq!(err.resource, Resource::OracleCalls);
        // Sticky: even a plain checkpoint now reports the trip.
        assert_eq!(checkpoint().unwrap_err().resource, Resource::OracleCalls);
    }

    #[test]
    fn conflict_and_model_limits_trip() {
        {
            let _g = Budget::unlimited().with_max_conflicts(1).install();
            charge_conflict().unwrap();
            assert_eq!(charge_conflict().unwrap_err().resource, Resource::Conflicts);
        }
        {
            let _g = Budget::unlimited().with_max_models(1).install();
            charge_model().unwrap();
            assert_eq!(charge_model().unwrap_err().resource, Resource::Models);
        }
    }

    #[test]
    fn fail_after_is_exact() {
        for n in 0..5u64 {
            let _g = Budget::unlimited().fail_after(n).install();
            for i in 0..n {
                assert!(checkpoint().is_ok(), "checkpoint {i} under fail_after({n})");
            }
            let err = checkpoint().unwrap_err();
            assert_eq!(err.resource, Resource::FaultInjection);
            assert_eq!(err.checkpoint, n + 1);
        }
    }

    #[test]
    fn cancel_flag_trips_promptly() {
        let flag = Arc::new(AtomicBool::new(false));
        let _g = Budget::unlimited().with_cancel_flag(flag.clone()).install();
        checkpoint().unwrap();
        flag.store(true, Ordering::Relaxed);
        assert_eq!(checkpoint().unwrap_err().resource, Resource::Cancelled);
    }

    #[test]
    fn expired_deadline_trips_on_coarse_charge() {
        let _g = Budget::unlimited()
            .with_timeout(Duration::from_millis(0))
            .install();
        // Plain checkpoints may ride the stride, but a coarse charge
        // consults the clock immediately.
        assert_eq!(
            charge_oracle_call().unwrap_err().resource,
            Resource::Deadline
        );
    }

    #[test]
    fn nested_budgets_inner_trips_first() {
        let _outer = Budget::unlimited().with_max_oracle_calls(10).install();
        let inner = Budget::unlimited().with_max_oracle_calls(1).install();
        charge_oracle_call().unwrap();
        assert_eq!(
            charge_oracle_call().unwrap_err().resource,
            Resource::OracleCalls
        );
        drop(inner);
        // Outer governor was charged too but has headroom left.
        assert!(charge_oracle_call().is_ok());
    }

    #[test]
    fn interrupted_renders() {
        let i = Interrupted {
            resource: Resource::Deadline,
            checkpoint: 42,
            partial: Some("3 models found".into()),
        };
        assert_eq!(
            i.to_string(),
            "interrupted: deadline (checkpoint 42); 3 models found"
        );
        assert!(Interrupted::invariant("broken")
            .to_string()
            .contains("invariant"));
    }

    #[test]
    fn handle_mirrors_budget_onto_workers() {
        let _g = Budget::unlimited().with_max_oracle_calls(4).install();
        charge_oracle_call().unwrap();
        let h = handle();
        assert!(!h.is_empty());
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!active());
                let _m = h.install();
                assert!(active());
                // Charges land on the parent's shared counters.
                charge_oracle_call().unwrap();
                charge_oracle_call().unwrap();
            })
            .join()
            .unwrap();
        });
        // Parent sees the worker's charges: 3 of 4 used.
        assert_eq!(consumed().unwrap().oracle_calls, 3);
        charge_oracle_call().unwrap();
        assert_eq!(
            charge_oracle_call().unwrap_err().resource,
            Resource::OracleCalls
        );
    }

    #[test]
    fn caps_split_atomically_across_threads() {
        // Two workers race over a shared 10-call budget: exactly 10 calls
        // succeed in total, no matter the interleaving.
        let _g = Budget::unlimited().with_max_oracle_calls(10).install();
        let h = handle();
        let ok = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _m = h.install();
                    while charge_oracle_call().is_ok() {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn parent_trip_cancels_workers() {
        let flag = Arc::new(AtomicBool::new(false));
        let _g = Budget::unlimited().with_cancel_flag(flag.clone()).install();
        let h = handle();
        std::thread::scope(|s| {
            let worker = s.spawn(|| {
                let _m = h.install();
                let mut err = None;
                for _ in 0..1_000_000 {
                    if let Err(e) = checkpoint() {
                        err = Some(e);
                        break;
                    }
                    std::thread::yield_now();
                }
                err.expect("worker observed the parent's cancellation")
            });
            // Parent raises the flag; the worker must stop with the same
            // typed interruption at its next checkpoint.
            flag.store(true, Ordering::Relaxed);
            let err = worker.join().unwrap();
            assert_eq!(err.resource, Resource::Cancelled);
        });
        assert_eq!(checkpoint().unwrap_err().resource, Resource::Cancelled);
    }

    #[test]
    fn handle_reports_sticky_trip_without_install() {
        let _g = Budget::unlimited().with_max_models(0).install();
        let h = handle();
        assert!(h.tripped().is_none());
        charge_model().unwrap_err();
        assert_eq!(h.tripped().unwrap().resource, Resource::Models);
    }

    #[test]
    fn empty_handle_is_a_noop() {
        let h = handle();
        assert!(h.is_empty());
        let _m = h.install();
        assert!(!active());
        assert!(checkpoint().is_ok());
    }
}
