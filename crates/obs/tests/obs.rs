//! Integration tests for the observability layer: counter arithmetic, span
//! nesting well-formedness, sink delivery with thread/ordinal provenance,
//! and the JSON contract.
//!
//! The counter registry and sink are process-global, so every test that
//! touches them serializes on `GUARD`.

use ddb_obs::json::{self, Json};
use ddb_obs::{
    check_span_nesting, check_track_nesting, clear_sink, counter_add, counter_bump, counter_max,
    set_sink, snapshot, span, CounterSnapshot, Event, MemorySink, TraceEvent,
};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn counters_accumulate_and_diff() {
    let _g = lock();
    let before = snapshot();
    counter_add("test.alpha", 2);
    counter_add("test.alpha", 3);
    counter_max("test.gauge.peak", 10);
    counter_max("test.gauge.peak", 7); // lower: no change
    let spent = snapshot().diff(&before);
    assert_eq!(spent.get("test.alpha"), 5);
    assert!(spent.get("test.gauge.peak") >= 10);
    assert_eq!(spent.get("test.never_touched"), 0);
}

#[test]
fn snapshot_diff_drops_zero_deltas() {
    let _g = lock();
    counter_add("test.static", 1);
    let before = snapshot();
    let spent = snapshot().diff(&before);
    assert_eq!(spent.get("test.static"), 0);
}

#[test]
fn span_nesting_depth_tracks_scope() {
    let _g = lock();
    assert_eq!(ddb_obs::current_depth(), 0);
    {
        let outer = span("test.outer");
        assert_eq!(outer.depth(), 0);
        assert_eq!(ddb_obs::current_depth(), 1);
        {
            let inner = span("test.inner");
            assert_eq!(inner.depth(), 1);
            assert_eq!(ddb_obs::current_depth(), 2);
        }
        assert_eq!(ddb_obs::current_depth(), 1);
    }
    assert_eq!(ddb_obs::current_depth(), 0);
}

#[test]
fn spans_report_calls_and_time() {
    let _g = lock();
    let before = snapshot();
    for _ in 0..3 {
        let _s = span("test.timed");
    }
    let spent = snapshot().diff(&before);
    assert_eq!(spent.get("span.test.timed.calls"), 3);
    assert!(
        spent.get("span.test.timed.ns") >= 3,
        "durations are >= 1ns each"
    );
}

#[test]
fn sink_sees_well_formed_nesting() {
    let _g = lock();
    let sink = MemorySink::new();
    set_sink(sink.clone());
    {
        let _a = span("test.sink.a");
        {
            let _b = span("test.sink.b");
        }
        {
            let _c = span("test.sink.c");
        }
    }
    clear_sink();
    let events: Vec<Event> = sink
        .take()
        .into_iter()
        .map(|te| te.event)
        .filter(|e| match e {
            Event::SpanEnter { name, .. } | Event::SpanExit { name, .. } => {
                name.starts_with("test.sink.")
            }
            Event::Counter { .. } | Event::Instant { .. } => false,
        })
        .collect();
    let matched = check_span_nesting(&events).expect("nesting well-formed");
    assert_eq!(matched, 3);
    // Exit durations are present and ordering is enter-a, enter-b, exit-b,
    // enter-c, exit-c, exit-a.
    let names: Vec<(bool, &str)> = events
        .iter()
        .map(|e| match e {
            Event::SpanEnter { name, .. } => (true, name.as_str()),
            Event::SpanExit { name, .. } => (false, name.as_str()),
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(
        names,
        vec![
            (true, "test.sink.a"),
            (true, "test.sink.b"),
            (false, "test.sink.b"),
            (true, "test.sink.c"),
            (false, "test.sink.c"),
            (false, "test.sink.a"),
        ]
    );
}

#[test]
fn check_span_nesting_rejects_malformed() {
    let enter = |name: &str, depth: usize| Event::SpanEnter {
        name: name.into(),
        depth,
        at_ns: 0,
    };
    let exit = |name: &str, depth: usize| Event::SpanExit {
        name: name.into(),
        depth,
        at_ns: 1,
        dur_ns: 1,
    };
    assert!(check_span_nesting(&[exit("a", 0)]).is_err());
    assert!(check_span_nesting(&[enter("a", 0)]).is_err());
    assert!(check_span_nesting(&[enter("a", 0), exit("b", 0)]).is_err());
    assert!(check_span_nesting(&[enter("a", 1), exit("a", 1)]).is_err());
    assert_eq!(
        check_span_nesting(&[enter("a", 0), enter("b", 1), exit("b", 1), exit("a", 0)]),
        Ok(2)
    );
}

#[test]
fn counter_events_reach_sink_with_totals() {
    let _g = lock();
    let sink = MemorySink::new();
    set_sink(sink.clone());
    counter_add("test.evt", 4);
    counter_add("test.evt", 2);
    clear_sink();
    let deltas: Vec<(u64, u64)> = sink
        .take()
        .into_iter()
        .filter_map(|te| match te.event {
            Event::Counter {
                name, delta, total, ..
            } if name == "test.evt" => Some((delta, total)),
            _ => None,
        })
        .collect();
    assert_eq!(deltas.len(), 2);
    assert_eq!(deltas[0].0, 4);
    assert_eq!(deltas[1].0, 2);
    assert_eq!(deltas[1].1, deltas[0].1 + 2);
}

#[test]
fn bumped_counter_events_carry_thread_totals() {
    let _g = lock();
    let sink = MemorySink::new();
    set_sink(sink.clone());
    let base = ddb_obs::thread_counter_total("test.bump.evt");
    counter_bump("test.bump.evt", 3);
    counter_bump("test.bump.evt", 2);
    clear_sink();
    let got: Vec<(u64, u64)> = sink
        .take()
        .into_iter()
        .filter_map(|te| match te.event {
            Event::Counter {
                name, delta, total, ..
            } if name == "test.bump.evt" => Some((delta, total)),
            _ => None,
        })
        .collect();
    assert_eq!(
        got,
        vec![(3, base + 3), (2, base + 5)],
        "one event per bump, totals are the thread's lifetime totals"
    );
}

#[test]
fn events_carry_thread_ids_and_monotone_ordinals() {
    let _g = lock();
    let sink = MemorySink::new();
    set_sink(sink.clone());
    {
        let _a = span("test.ord.main");
    }
    std::thread::spawn(|| {
        let _b = span("test.ord.worker");
    })
    .join()
    .unwrap();
    clear_sink();
    let events: Vec<TraceEvent> = sink.take();
    let mut threads: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for te in &events {
        threads.entry(te.thread).or_default().push(te.ordinal);
    }
    assert!(threads.len() >= 2, "main and worker tracks present");
    for (thread, ords) in &threads {
        for w in ords.windows(2) {
            assert!(w[0] < w[1], "ordinals not monotone on track {thread}");
        }
    }
    check_track_nesting(&events).expect("every track well-nested");
}

#[test]
fn snapshot_json_roundtrips_through_parser() {
    let _g = lock();
    let before = snapshot();
    counter_add("test.json.a", 1);
    counter_add("test.json.b", 99);
    let spent = snapshot().diff(&before);
    let text = spent.to_json().render();
    let parsed = json::parse(&text).expect("snapshot renders valid JSON");
    assert_eq!(parsed.get("test.json.a").and_then(Json::as_u64), Some(1));
    assert_eq!(parsed.get("test.json.b").and_then(Json::as_u64), Some(99));
}

#[test]
fn event_json_roundtrips_through_parser() {
    let events = [
        TraceEvent {
            thread: 0,
            ordinal: 0,
            event: Event::SpanEnter {
                name: "x".into(),
                depth: 0,
                at_ns: 123,
            },
        },
        TraceEvent {
            thread: 0,
            ordinal: 1,
            event: Event::SpanExit {
                name: "x".into(),
                depth: 0,
                at_ns: 579,
                dur_ns: 456,
            },
        },
        TraceEvent {
            thread: 2,
            ordinal: 0,
            event: Event::Counter {
                name: "sat.solves".into(),
                delta: 1,
                total: 7,
                at_ns: 600,
            },
        },
        TraceEvent {
            thread: 2,
            ordinal: 1,
            event: Event::Instant {
                name: "govern.interrupts.deadline".into(),
                at_ns: 700,
            },
        },
    ];
    let doc = Json::Arr(events.iter().map(TraceEvent::to_json).collect());
    let parsed = json::parse(&doc.render()).expect("valid JSON");
    let arr = parsed.as_arr().unwrap();
    assert_eq!(arr.len(), 4);
    assert_eq!(
        arr[0].get("type").and_then(Json::as_str),
        Some("span_enter")
    );
    assert_eq!(arr[0].get("thread").and_then(Json::as_u64), Some(0));
    assert_eq!(arr[1].get("dur_ns").and_then(Json::as_u64), Some(456));
    assert_eq!(arr[1].get("ordinal").and_then(Json::as_u64), Some(1));
    assert_eq!(arr[2].get("total").and_then(Json::as_u64), Some(7));
    assert_eq!(arr[2].get("thread").and_then(Json::as_u64), Some(2));
    assert_eq!(arr[3].get("type").and_then(Json::as_str), Some("instant"));
}

#[test]
fn render_table_is_aligned() {
    // Build via diff of a live registry to keep the type's invariants.
    let snap: CounterSnapshot = {
        let _g = lock();
        let before = snapshot();
        counter_add("test.table.long_counter_name", 12);
        counter_add("test.t", 3);
        snapshot().diff(&before)
    };
    let table = snap.render_table();
    assert!(table.contains("test.table.long_counter_name"));
    assert!(table.lines().count() >= 3);
}

#[test]
fn histograms_flow_from_spansites_to_snapshot() {
    let _g = lock();
    let before = ddb_obs::hist_snapshot().count("test.obs.hist");
    {
        let _s = span("test.hist.outer");
        ddb_obs::hist_record("test.obs.hist", 10);
        ddb_obs::hist_record("test.obs.hist", 1_000);
    } // depth-0 exit flushes the thread's histogram buffer
    let snap = ddb_obs::hist_snapshot();
    assert_eq!(snap.count("test.obs.hist") - before, 2);
    let h = snap.get("test.obs.hist").unwrap();
    assert!(h.max() >= 1_000);
    let parsed = json::parse(&snap.to_json().render()).expect("valid JSON");
    assert!(parsed.get("test.obs.hist").is_some());
}
