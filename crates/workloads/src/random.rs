//! Parameterized random database generation.

use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Rule};

/// Specification of a random database family.
#[derive(Clone, Debug)]
pub struct DbSpec {
    /// Vocabulary size `|V|`.
    pub num_atoms: usize,
    /// Number of rules.
    pub num_rules: usize,
    /// Maximum head width (heads are 1..=max, uniformly).
    pub max_head: usize,
    /// Maximum positive body width (0..=max).
    pub max_body_pos: usize,
    /// Maximum negated body width (0..=max; 0 disables negation).
    pub max_body_neg: usize,
    /// Probability that a rule is an integrity clause (head dropped).
    pub integrity_rate: f64,
}

impl DbSpec {
    /// A positive (Table 1) family: disjunctive heads, positive bodies,
    /// no negation, no integrity clauses.
    pub fn positive(num_atoms: usize, num_rules: usize) -> Self {
        DbSpec {
            num_atoms,
            num_rules,
            max_head: 3,
            max_body_pos: 2,
            max_body_neg: 0,
            integrity_rate: 0.0,
        }
    }

    /// A deductive (Table 2) family: positive with integrity clauses.
    pub fn deductive(num_atoms: usize, num_rules: usize) -> Self {
        DbSpec {
            integrity_rate: 0.15,
            ..Self::positive(num_atoms, num_rules)
        }
    }

    /// A normal family: negation and integrity clauses allowed.
    pub fn normal(num_atoms: usize, num_rules: usize) -> Self {
        DbSpec {
            max_body_neg: 2,
            integrity_rate: 0.1,
            ..Self::positive(num_atoms, num_rules)
        }
    }
}

/// Generates a random database from `spec`, deterministically from `seed`.
pub fn random_db(spec: &DbSpec, seed: u64) -> Database {
    let mut rng = XorShift64Star::seed_from_u64(seed);
    let mut db = Database::with_fresh_atoms(spec.num_atoms);
    let atom = |rng: &mut XorShift64Star, n: usize| Atom::new(rng.gen_range(0, n) as u32);
    for _ in 0..spec.num_rules {
        let integrity = rng.gen_bool(spec.integrity_rate);
        let head: Vec<Atom> = if integrity {
            Vec::new()
        } else {
            let w = rng.gen_range_inclusive(1, spec.max_head);
            (0..w).map(|_| atom(&mut rng, spec.num_atoms)).collect()
        };
        let bp = rng.gen_range_inclusive(0, spec.max_body_pos);
        let body_pos: Vec<Atom> = (0..bp).map(|_| atom(&mut rng, spec.num_atoms)).collect();
        let bn = if spec.max_body_neg == 0 {
            0
        } else {
            rng.gen_range_inclusive(0, spec.max_body_neg)
        };
        let body_neg: Vec<Atom> = (0..bn).map(|_| atom(&mut rng, spec.num_atoms)).collect();
        if head.is_empty() && body_pos.is_empty() && body_neg.is_empty() {
            continue;
        }
        db.add_rule(Rule::new(head, body_pos, body_neg));
    }
    db
}

/// Generates a random *stratified* database: atoms are split into
/// `num_layers` consecutive layers; each rule's head lives in one layer,
/// its positive body in layers up to it, its negated body strictly below.
pub fn random_stratified_db(
    num_atoms: usize,
    num_rules: usize,
    num_layers: usize,
    seed: u64,
) -> Database {
    assert!(num_layers >= 1 && num_layers <= num_atoms.max(1));
    let mut rng = XorShift64Star::seed_from_u64(seed);
    let mut db = Database::with_fresh_atoms(num_atoms);
    let layer_of = |a: usize| a * num_layers / num_atoms.max(1);
    // Atoms of each layer, by the fixed arithmetic split.
    let layer_atoms = |l: usize| -> Vec<Atom> {
        (0..num_atoms)
            .filter(|&a| layer_of(a) == l)
            .map(|a| Atom::new(a as u32))
            .collect()
    };
    for _ in 0..num_rules {
        let l = rng.gen_range(0, num_layers);
        let here = layer_atoms(l);
        if here.is_empty() {
            continue;
        }
        let upto: Vec<Atom> = (0..num_atoms)
            .filter(|&a| layer_of(a) <= l)
            .map(|a| Atom::new(a as u32))
            .collect();
        let below: Vec<Atom> = (0..num_atoms)
            .filter(|&a| layer_of(a) < l)
            .map(|a| Atom::new(a as u32))
            .collect();
        let head: Vec<Atom> = (0..rng.gen_range_inclusive(1, 2))
            .map(|_| here[rng.gen_range(0, here.len())])
            .collect();
        let body_pos: Vec<Atom> = (0..rng.gen_range_inclusive(0, 2))
            .map(|_| upto[rng.gen_range(0, upto.len())])
            .collect();
        let body_neg: Vec<Atom> = if below.is_empty() {
            Vec::new()
        } else {
            (0..rng.gen_range_inclusive(0, 2))
                .map(|_| below[rng.gen_range(0, below.len())])
                .collect()
        };
        db.add_rule(Rule::new(head, body_pos, body_neg));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::DbClass;

    #[test]
    fn determinism() {
        let spec = DbSpec::normal(10, 20);
        let a = random_db(&spec, 42);
        let b = random_db(&spec, 42);
        assert_eq!(a.rules(), b.rules());
        let c = random_db(&spec, 43);
        assert_ne!(a.rules(), c.rules());
    }

    #[test]
    fn positive_spec_yields_positive_dbs() {
        for seed in 0..20 {
            let db = random_db(&DbSpec::positive(8, 15), seed);
            assert_eq!(db.class(), DbClass::Positive, "seed {seed}");
        }
    }

    #[test]
    fn deductive_spec_eventually_has_integrity() {
        let found =
            (0..20).any(|seed| random_db(&DbSpec::deductive(8, 20), seed).has_integrity_clauses());
        assert!(found);
    }

    #[test]
    fn stratified_generator_is_stratifiable() {
        for seed in 0..30 {
            let db = random_stratified_db(12, 25, 3, seed);
            assert!(db.stratification().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn stratified_generator_uses_negation() {
        let found = (0..20).any(|seed| random_stratified_db(12, 30, 3, seed).has_negation());
        assert!(found);
    }

    #[test]
    fn rule_counts_respected() {
        let db = random_db(&DbSpec::positive(5, 30), 1);
        assert!(db.len() <= 30 && db.len() >= 25);
    }
}
