//! # ddb-workloads — deterministic instance generators
//!
//! Every benchmark family behind the Table-1/Table-2 experiments lives
//! here, each seeded and deterministic:
//!
//! * [`random`] — parameterized random databases across the syntactic
//!   classes (positive / deductive / stratified / normal) with tunable
//!   rule counts, head widths, body widths, negation and integrity rates;
//! * [`structured`] — the scaling families: Horn chains and layered
//!   disjunctive programs (the tractable DDR/PWS cells), graph
//!   `k`-coloring as a disjunctive database (minimal/stable model
//!   workloads), even-loop batteries (2^k stable models), odd-loop traps
//!   (stable-model-free), and phase-transition CNFs rendered as deductive
//!   databases (the NP-complete existence cells);
//! * [`queries`] — random literal and formula queries over a database's
//!   vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queries;
pub mod random;
pub mod structured;
