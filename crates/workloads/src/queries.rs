//! Random query generation (literals and formulas over a vocabulary).

use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Formula, Literal};

/// A deterministic random literal over `num_atoms` atoms.
pub fn random_literal(num_atoms: usize, seed: u64) -> Literal {
    let mut rng = XorShift64Star::seed_from_u64(seed);
    Literal::with_sign(
        Atom::new(rng.gen_range(0, num_atoms) as u32),
        rng.gen_bool(0.5),
    )
}

/// A deterministic random formula with roughly `size` connective nodes
/// over `num_atoms` atoms.
pub fn random_formula(num_atoms: usize, size: usize, seed: u64) -> Formula {
    let mut rng = XorShift64Star::seed_from_u64(seed);
    build(&mut rng, num_atoms, size)
}

fn build(rng: &mut XorShift64Star, num_atoms: usize, budget: usize) -> Formula {
    if budget == 0 || rng.gen_bool(0.25) {
        return Formula::atom(Atom::new(rng.gen_range(0, num_atoms) as u32));
    }
    match rng.gen_range(0, 5) {
        0 => build(rng, num_atoms, budget - 1).negated(),
        1 => {
            let k = rng.gen_range_inclusive(2, 3.min(budget + 1));
            Formula::And((0..k).map(|_| build(rng, num_atoms, budget / k)).collect())
        }
        2 => {
            let k = rng.gen_range_inclusive(2, 3.min(budget + 1));
            Formula::Or((0..k).map(|_| build(rng, num_atoms, budget / k)).collect())
        }
        3 => build(rng, num_atoms, budget / 2).implies(build(rng, num_atoms, budget / 2)),
        _ => build(rng, num_atoms, budget / 2).iff(build(rng, num_atoms, budget / 2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_determinism_and_range() {
        assert_eq!(random_literal(5, 9), random_literal(5, 9));
        for seed in 0..50 {
            assert!(random_literal(5, seed).atom().index() < 5);
        }
    }

    #[test]
    fn formula_determinism_and_vocabulary() {
        let f = random_formula(6, 10, 3);
        assert_eq!(f, random_formula(6, 10, 3));
        assert!(f.atoms().iter().all(|a| a.index() < 6));
        assert!(f.size() >= 1);
    }

    #[test]
    fn formulas_vary_with_seed() {
        let distinct: std::collections::HashSet<String> = (0..20)
            .map(|s| format!("{:?}", random_formula(6, 8, s)))
            .collect();
        assert!(distinct.len() > 5);
    }
}
