//! Structured scaling families.

use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Rule, Symbols};

/// A Horn chain `x₀. x₁ ← x₀. … x_{n-1} ← x_{n-2}.` — the polynomial
/// scaling family for the tractable DDR/PWS cells (every atom active).
pub fn horn_chain(n: usize) -> Database {
    let mut db = Database::with_fresh_atoms(n);
    if n == 0 {
        return db;
    }
    db.add_rule(Rule::fact([Atom::new(0)]));
    for i in 1..n {
        db.add_rule(Rule::new(
            [Atom::new(i as u32)],
            [Atom::new(i as u32 - 1)],
            [],
        ));
    }
    db
}

/// A layered disjunctive program: `layers` layers of `width` atoms; every
/// layer-`i+1` atom is derivable from a disjunction over layer `i`:
///
/// ```text
/// a₀,₀ ∨ … ∨ a₀,w.                      (base facts)
/// aᵢ₊₁,ⱼ ∨ aᵢ₊₁,ⱼ₊₁ ← aᵢ,ⱼ.           (diagonal propagation)
/// ```
///
/// Positive, integrity-free, with exponentially many minimal models in
/// `layers · width` — a stress family for enumeration-based procedures and
/// a *polynomial* family for the DDR active-atom closure.
pub fn layered_disjunctive(layers: usize, width: usize) -> Database {
    let n = layers * width;
    let mut db = Database::with_fresh_atoms(n);
    if layers == 0 || width == 0 {
        return db;
    }
    let at = |l: usize, j: usize| Atom::new((l * width + j) as u32);
    db.add_rule(Rule::fact((0..width).map(|j| at(0, j))));
    for l in 0..layers - 1 {
        for j in 0..width {
            let j2 = (j + 1) % width;
            db.add_rule(Rule::new([at(l + 1, j), at(l + 1, j2)], [at(l, j)], []));
        }
    }
    db
}

/// An undirected random graph `G(n, p)` as an edge list (deterministic in
/// `seed`).
pub fn random_graph(n: usize, p: f64, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = XorShift64Star::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Graph `k`-coloring as a disjunctive deductive database: atom `c_{v,i}`
/// says vertex `v` has color `i`;
///
/// ```text
/// c_{v,1} ∨ … ∨ c_{v,k}.          (every vertex colored)
/// ← c_{u,i} ∧ c_{v,i}.            (adjacent vertices differ, per color)
/// ```
///
/// The minimal models are exactly the proper colorings with one color per
/// vertex; EGCWA/DSM model existence on this family is the NP-complete
/// Table-2 cell in its most natural clothing.
pub fn graph_coloring(num_vertices: usize, edges: &[(usize, usize)], k: usize) -> Database {
    let mut symbols = Symbols::new();
    let color: Vec<Vec<Atom>> = (0..num_vertices)
        .map(|v| {
            (0..k)
                .map(|i| symbols.intern(&format!("c_{v}_{i}")))
                .collect()
        })
        .collect();
    let mut db = Database::new(symbols);
    for c in &color {
        db.add_rule(Rule::fact(c.iter().copied()));
    }
    for &(u, v) in edges {
        for (&cu, &cv) in color[u].iter().zip(&color[v]) {
            db.add_rule(Rule::integrity([cu, cv], []));
        }
    }
    db
}

/// `towers` independent stacked disjunctive towers of `height` stages:
///
/// ```text
/// c₀ ∨ d₀.                      (per-tower base choice)
/// aᵢ ∨ bᵢ ← cᵢ₋₁.               (stage choice)
/// cᵢ ← aᵢ.   cᵢ ← bᵢ.           (stage closure)
/// ```
///
/// Positive and integrity-free, with the minimal-model count multiplying
/// across towers — but a query about one tower's low stage has a
/// relevance slice of `2 + 3·stage` atoms however many towers exist, so
/// the query-relevant slicing route answers it at single-tower cost. The
/// scaling family behind the `T1-slicing` bench group.
pub fn sliceable_towers(towers: usize, height: usize) -> Database {
    let per = 2 + 3 * height;
    let mut db = Database::with_fresh_atoms(towers * per);
    for t in 0..towers {
        let base = (t * per) as u32;
        let c = |i: usize| {
            Atom::new(if i == 0 {
                base
            } else {
                base + (3 * i + 1) as u32
            })
        };
        db.add_rule(Rule::fact([Atom::new(base), Atom::new(base + 1)]));
        for i in 1..=height {
            let a = Atom::new(base + (3 * i - 1) as u32);
            let b = Atom::new(base + (3 * i) as u32);
            db.add_rule(Rule::new([a, b], [c(i - 1)], []));
            db.add_rule(Rule::new([c(i)], [a], []));
            db.add_rule(Rule::new([c(i)], [b], []));
        }
    }
    db
}

/// `chains` independent linear chains of `depth` edges, written as a
/// **non-ground** Datalog∨ program with the chain identifier in every
/// first argument, plus one bound query atom:
///
/// ```text
/// start(cⱼ,a) | start(cⱼ,b).            (per-chain founder choice)
/// edge(cⱼ,nᵢ,nᵢ₊₁).                      (per-chain linear edges)
/// reach(C,n0) ← start(C,a).              (shared rules; C is invariant
/// reach(C,n0) ← start(C,b).               through the recursion)
/// reach(C,Y) ← reach(C,X) ∧ edge(C,X,Y).
/// ```
///
/// Returns `(program_source, query_atom)`; the query asks for the last
/// node of chain 0 (`reach(c0,n<depth>)`). Because the bound first
/// argument is invariant through the recursion, goal-directed grounding
/// and the magic rewrite confine the work to one chain — grounded-rule
/// counts drop by a factor of `chains` against whole-program grounding
/// while the answer is identical. The scaling family behind the
/// `bench_magic` group.
pub fn bound_chains(chains: usize, depth: usize) -> (String, String) {
    let mut source = String::new();
    for c in 0..chains {
        source.push_str(&format!("start(c{c},a) | start(c{c},b).\n"));
        for i in 0..depth {
            source.push_str(&format!("edge(c{c},n{i},n{}).\n", i + 1));
        }
    }
    source.push_str("reach(C,n0) :- start(C,a).\n");
    source.push_str("reach(C,n0) :- start(C,b).\n");
    source.push_str("reach(C,Y) :- reach(C,X), edge(C,X,Y).\n");
    (source, format!("reach(c0,n{depth})"))
}

/// `k` independent even negative loops
/// `aᵢ ← ¬bᵢ. bᵢ ← ¬aᵢ.` — `2^k` stable models; the DSM/PDSM enumeration
/// stress family.
pub fn even_loops(k: usize) -> Database {
    let mut symbols = Symbols::new();
    let pairs: Vec<(Atom, Atom)> = (0..k)
        .map(|i| {
            (
                symbols.intern(&format!("a{i}")),
                symbols.intern(&format!("b{i}")),
            )
        })
        .collect();
    let mut db = Database::new(symbols);
    for &(a, b) in &pairs {
        db.add_rule(Rule::new([a], [], [b]));
        db.add_rule(Rule::new([b], [], [a]));
    }
    db
}

/// `k` even loops plus one odd loop guarded by all the `aᵢ`:
/// stable-model existence requires checking (worst case) every loop
/// assignment before concluding **no** — a hard family for the
/// Σᵖ₂-complete DSM-existence cell.
pub fn odd_loop_trap(k: usize) -> Database {
    let mut symbols = Symbols::new();
    let pairs: Vec<(Atom, Atom)> = (0..k)
        .map(|i| {
            (
                symbols.intern(&format!("a{i}")),
                symbols.intern(&format!("b{i}")),
            )
        })
        .collect();
    let trap = symbols.intern("trap");
    let mut db = Database::new(symbols);
    for &(a, b) in &pairs {
        db.add_rule(Rule::new([a], [], [b]));
        db.add_rule(Rule::new([b], [], [a]));
    }
    // trap ← a₀ ∧ … ∧ a_{k-1} ∧ ¬trap: any stable model choosing all aᵢ
    // is destroyed; all others survive — unless k = 0, where nothing does.
    db.add_rule(Rule::new([trap], pairs.iter().map(|&(a, _)| a), [trap]));
    db.add_rule(Rule::integrity(pairs.iter().map(|&(a, _)| a), [trap]));
    db
}

/// A random `width`-CNF at clause/variable `ratio`, rendered as a
/// deductive database (positive literals → head, negated → body). Around
/// ratio ≈ 4.26 (width 3) this is the classic SAT phase transition — the
/// hard family for the NP-complete model-existence cells of Table 2.
pub fn phase_transition_db(num_vars: usize, ratio: f64, width: usize, seed: u64) -> Database {
    let mut rng = XorShift64Star::seed_from_u64(seed);
    let mut db = Database::with_fresh_atoms(num_vars);
    let m = (num_vars as f64 * ratio).round() as usize;
    for _ in 0..m {
        let mut head = Vec::new();
        let mut body = Vec::new();
        for _ in 0..width {
            let v = Atom::new(rng.gen_range(0, num_vars) as u32);
            if rng.gen_bool(0.5) {
                head.push(v);
            } else {
                body.push(v);
            }
        }
        db.add_rule(Rule::new(head, body, []));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::{DbClass, Interpretation};

    #[test]
    fn horn_chain_shape() {
        let db = horn_chain(100);
        assert_eq!(db.len(), 100);
        assert!(db.is_horn());
        assert_eq!(db.class(), DbClass::Positive);
        // Its unique model is everything.
        let full = Interpretation::full(100);
        assert!(db.satisfied_by(&full));
    }

    #[test]
    fn layered_counts() {
        let db = layered_disjunctive(3, 4);
        assert_eq!(db.num_atoms(), 12);
        assert_eq!(db.len(), 1 + 2 * 4);
        assert_eq!(db.class(), DbClass::Positive);
    }

    #[test]
    fn coloring_models_are_colorings() {
        // Triangle, 3 colors: 6 proper colorings.
        let edges = vec![(0, 1), (1, 2), (0, 2)];
        let db = graph_coloring(3, &edges, 3);
        assert_eq!(db.class(), DbClass::Deductive);
        // Count models that use exactly one color per vertex by brute
        // force over the 2^9 interpretations.
        let mut proper = 0;
        for bits in 0u32..1 << 9 {
            let m = Interpretation::from_atoms(
                9,
                (0..9u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            if db.satisfied_by(&m) && m.count() == 3 {
                proper += 1;
            }
        }
        assert_eq!(proper, 6);
    }

    #[test]
    fn two_coloring_odd_cycle_unsat() {
        let edges = vec![(0, 1), (1, 2), (0, 2)];
        let db = graph_coloring(3, &edges, 2);
        // No model at all with one color per vertex; in fact no model:
        // every vertex needs a color, adjacent ones must differ — brute:
        let n = db.num_atoms();
        let any = (0u32..1 << n).any(|bits| {
            let m = Interpretation::from_atoms(
                n,
                (0..n as u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            db.satisfied_by(&m)
        });
        assert!(!any);
    }

    #[test]
    fn sliceable_towers_shape() {
        let db = sliceable_towers(3, 2);
        assert_eq!(db.num_atoms(), 3 * 8);
        assert_eq!(db.len(), 3 * 7);
        assert!(db.is_positive());
        let db = sliceable_towers(0, 2);
        assert_eq!(db.num_atoms(), 0);
    }

    #[test]
    fn bound_chains_shape() {
        let (source, query) = bound_chains(4, 8);
        assert_eq!(query, "reach(c0,n8)");
        // Per chain: one founder choice + 8 edge facts; plus 3 shared rules.
        assert_eq!(source.lines().count(), 4 * 9 + 3);
        assert!(source.contains("start(c3,a) | start(c3,b)."));
        assert!(source.contains("edge(c0,n7,n8)."));
        assert!(source.ends_with("reach(C,Y) :- reach(C,X), edge(C,X,Y).\n"));
        // Deterministic.
        assert_eq!(bound_chains(4, 8), bound_chains(4, 8));
    }

    #[test]
    fn even_loop_counts() {
        let db = even_loops(3);
        assert_eq!(db.num_atoms(), 6);
        assert_eq!(db.len(), 6);
        assert_eq!(db.class(), DbClass::Normal); // unstratifiable
    }

    #[test]
    fn graph_is_deterministic() {
        assert_eq!(random_graph(10, 0.3, 7), random_graph(10, 0.3, 7));
        assert_ne!(random_graph(10, 0.3, 7), random_graph(10, 0.3, 8));
    }

    #[test]
    fn phase_transition_is_deductive_class() {
        let db = phase_transition_db(20, 4.26, 3, 3);
        assert!(!db.has_negation());
        assert_eq!(db.len(), 85);
    }
}
