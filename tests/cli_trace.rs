//! End-to-end checks of the CLI observability surface: `--stats` and
//! `--trace-json` on `query`/`models`/`exists`/`profile`. The trace files
//! must be valid JSON as judged by the in-repo parser, with the documented
//! top-level fields and well-formed span events.

use disjunctive_db::obs::json::{parse, Json};
use std::path::PathBuf;
use std::process::Command;

fn ddb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddb"))
}

fn vase() -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/vase.dl")
        .to_str()
        .unwrap()
        .to_owned()
}

fn trace_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("ddb_trace_{name}_{}.json", std::process::id()))
        .to_str()
        .unwrap()
        .to_owned()
}

fn run_and_parse(name: &str, args: &[&str]) -> Json {
    let path = trace_path(name);
    let mut cmd = ddb();
    cmd.args(args).arg("--trace-json").arg(&path);
    let out = cmd.output().expect("running ddb");
    assert!(
        out.status.success(),
        "ddb {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let raw = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    parse(&raw).expect("trace file is valid JSON")
}

#[test]
fn query_trace_is_valid_json_with_counters_and_events() {
    let vase = vase();
    let doc = run_and_parse(
        "query",
        &[
            "query",
            &vase,
            "--semantics",
            "gcwa",
            "--literal",
            "-treat",
            "--stats",
        ],
    );
    assert_eq!(doc.get("version").unwrap().as_u64(), Some(1));
    assert_eq!(doc.get("command").unwrap().as_str(), Some("query"));
    assert_eq!(doc.get("semantics").unwrap().as_str(), Some("gcwa"));
    // GCWA closes `treat` off on the vase database.
    assert_eq!(doc.get("answer").unwrap().as_bool(), Some(true));
    assert!(doc.get("wall_ns").unwrap().as_u64().unwrap() > 0);
    // The counters object records the NP-oracle calls the decision made.
    let counters = doc.get("counters").unwrap();
    assert!(counters.get("sat.solves").unwrap().as_u64().unwrap() >= 1);
    // Events include spans for the semantics entry point, and the stream
    // is well-nested.
    let events = doc.get("events").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    let has_gcwa_span = events.iter().any(|e| {
        e.get("name")
            .and_then(|n| n.as_str())
            .is_some_and(|n| n.starts_with("gcwa."))
    });
    assert!(has_gcwa_span, "expected a gcwa.* span in the event stream");
}

#[test]
fn exists_trace_reports_boolean_answer() {
    let vase = vase();
    let doc = run_and_parse("exists", &["exists", &vase, "--semantics", "dsm"]);
    assert_eq!(doc.get("command").unwrap().as_str(), Some("exists"));
    assert_eq!(doc.get("answer").unwrap().as_bool(), Some(true));
}

#[test]
fn models_trace_reports_model_count() {
    let vase = vase();
    let doc = run_and_parse("models", &["models", &vase, "--semantics", "egcwa"]);
    assert_eq!(doc.get("command").unwrap().as_str(), Some("models"));
    // The vase database has exactly two minimal models ({alice, grounded}
    // and {bob, grounded}).
    assert_eq!(doc.get("answer").unwrap().as_u64(), Some(2));
}

#[test]
fn profile_trace_contains_all_thirty_cells() {
    let vase = vase();
    let doc = run_and_parse("profile", &["profile", &vase]);
    assert_eq!(doc.get("command").unwrap().as_str(), Some("profile"));
    let cells = doc.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(cells.len(), 30);
    for cell in cells {
        assert!(cell.get("semantics").unwrap().as_str().is_some());
        assert!(cell.get("paper_class").unwrap().as_str().is_some());
        // Positive database: every cell must be answered.
        assert!(cell.get("answer").unwrap().as_bool().is_some());
    }
}

#[test]
fn profile_prints_matrix_table() {
    let vase = vase();
    let out = ddb().args(["profile", &vase]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "GCWA", "EGCWA", "CCWA", "ECWA", "DDR", "PWS", "PERF", "ICWA", "DSM", "PDSM",
    ] {
        assert!(stdout.contains(name), "missing {name} in profile table");
    }
    assert!(stdout.contains("Πᵖ₂"), "missing paper classes");
}

#[test]
fn stats_flag_prints_counter_table() {
    let vase = vase();
    let out = ddb()
        .args(["exists", &vase, "--semantics", "gcwa", "--stats"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("sat.solves"),
        "stats table missing: {stderr}"
    );
}
