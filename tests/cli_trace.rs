//! End-to-end checks of the CLI observability surface: `--stats`,
//! `--trace-json`, `--trace-chrome` and `--flame` on
//! `query`/`models`/`exists`/`profile`, plus the `ddb trace` span-tree
//! subcommand. The trace files must be valid JSON as judged by the
//! in-repo parser, with the documented top-level fields, well-formed
//! span events, and balanced begin/end pairs per thread track.

use disjunctive_db::obs::json::{parse, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::Command;

fn ddb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddb"))
}

fn vase() -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/vase.dl")
        .to_str()
        .unwrap()
        .to_owned()
}

fn layers() -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/layers.dlv")
        .to_str()
        .unwrap()
        .to_owned()
}

fn trace_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("ddb_trace_{name}_{}.json", std::process::id()))
        .to_str()
        .unwrap()
        .to_owned()
}

fn run_and_parse(name: &str, args: &[&str]) -> Json {
    let path = trace_path(name);
    let mut cmd = ddb();
    cmd.args(args).arg("--trace-json").arg(&path);
    let out = cmd.output().expect("running ddb");
    assert!(
        out.status.success(),
        "ddb {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let raw = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    parse(&raw).expect("trace file is valid JSON")
}

#[test]
fn query_trace_is_valid_json_with_counters_and_events() {
    let vase = vase();
    let doc = run_and_parse(
        "query",
        &[
            "query",
            &vase,
            "--semantics",
            "gcwa",
            "--literal",
            "-treat",
            "--stats",
        ],
    );
    assert_eq!(doc.get("version").unwrap().as_u64(), Some(1));
    assert_eq!(doc.get("command").unwrap().as_str(), Some("query"));
    assert_eq!(doc.get("semantics").unwrap().as_str(), Some("gcwa"));
    // GCWA closes `treat` off on the vase database.
    assert_eq!(doc.get("answer").unwrap().as_bool(), Some(true));
    assert!(doc.get("wall_ns").unwrap().as_u64().unwrap() > 0);
    // The counters object records the NP-oracle calls the decision made.
    let counters = doc.get("counters").unwrap();
    assert!(counters.get("sat.solves").unwrap().as_u64().unwrap() >= 1);
    // Events include spans for the semantics entry point, and the stream
    // is well-nested.
    let events = doc.get("events").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    let has_gcwa_span = events.iter().any(|e| {
        e.get("name")
            .and_then(|n| n.as_str())
            .is_some_and(|n| n.starts_with("gcwa."))
    });
    assert!(has_gcwa_span, "expected a gcwa.* span in the event stream");
}

#[test]
fn exists_trace_reports_boolean_answer() {
    let vase = vase();
    let doc = run_and_parse("exists", &["exists", &vase, "--semantics", "dsm"]);
    assert_eq!(doc.get("command").unwrap().as_str(), Some("exists"));
    assert_eq!(doc.get("answer").unwrap().as_bool(), Some(true));
}

#[test]
fn models_trace_reports_model_count() {
    let vase = vase();
    let doc = run_and_parse("models", &["models", &vase, "--semantics", "egcwa"]);
    assert_eq!(doc.get("command").unwrap().as_str(), Some("models"));
    // The vase database has exactly two minimal models ({alice, grounded}
    // and {bob, grounded}).
    assert_eq!(doc.get("answer").unwrap().as_u64(), Some(2));
}

#[test]
fn profile_trace_contains_all_thirty_cells() {
    let vase = vase();
    let doc = run_and_parse("profile", &["profile", &vase]);
    assert_eq!(doc.get("command").unwrap().as_str(), Some("profile"));
    let cells = doc.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(cells.len(), 30);
    for cell in cells {
        assert!(cell.get("semantics").unwrap().as_str().is_some());
        assert!(cell.get("paper_class").unwrap().as_str().is_some());
        // Positive database: every cell must be answered.
        assert!(cell.get("answer").unwrap().as_bool().is_some());
    }
}

#[test]
fn profile_prints_matrix_table() {
    let vase = vase();
    let out = ddb().args(["profile", &vase]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "GCWA", "EGCWA", "CCWA", "ECWA", "DDR", "PWS", "PERF", "ICWA", "DSM", "PDSM",
    ] {
        assert!(stdout.contains(name), "missing {name} in profile table");
    }
    assert!(stdout.contains("Πᵖ₂"), "missing paper classes");
}

#[test]
fn stats_flag_prints_counter_table() {
    let vase = vase();
    let out = ddb()
        .args(["exists", &vase, "--semantics", "gcwa", "--stats"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("sat.solves"),
        "stats table missing: {stderr}"
    );
}

/// A formula batch on the layered datalog example: four independent
/// questions, so `--threads` has real work to fan out.
fn batch_args<'a>(layers: &'a str, threads: &'a str) -> Vec<&'a str> {
    vec![
        "query",
        layers,
        "--formula",
        "covered(gear)",
        "--formula",
        "covered(axle)",
        "--formula",
        "flagged(boltco)",
        "--formula",
        "audited(acme)",
        "--semantics",
        "egcwa",
        "--threads",
        threads,
    ]
}

#[test]
fn trace_json_events_carry_thread_and_monotone_ordinals() {
    let vase = vase();
    let doc = run_and_parse(
        "provenance",
        &["query", &vase, "--semantics", "gcwa", "--literal", "-treat"],
    );
    let events = doc.get("events").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    let mut last: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        let thread = e.get("thread").expect("thread field").as_u64().unwrap();
        let ordinal = e.get("ordinal").expect("ordinal field").as_u64().unwrap();
        if let Some(prev) = last.insert(thread, ordinal) {
            assert!(
                ordinal > prev,
                "ordinals on track {thread} must be strictly increasing"
            );
        }
    }
}

#[test]
fn chrome_trace_has_balanced_tracks_per_worker() {
    let layers = layers();
    let path = trace_path("chrome");
    let mut args = batch_args(&layers, "4");
    args.extend(["--trace-chrome", &path]);
    let out = ddb().args(&args).output().unwrap();
    assert!(
        out.status.success(),
        "ddb {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let raw = std::fs::read_to_string(&path).expect("chrome trace written");
    std::fs::remove_file(&path).ok();
    let doc = parse(&raw).expect("chrome trace is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut span_tracks: BTreeSet<u64> = BTreeSet::new();
    let mut named_tracks: BTreeSet<u64> = BTreeSet::new();
    let mut pairs = 0u64;
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        let tid = e.get("tid").unwrap().as_u64().unwrap();
        let name = e.get("name").unwrap().as_str().unwrap().to_owned();
        match ph {
            "B" => {
                span_tracks.insert(tid);
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                span_tracks.insert(tid);
                let top = stacks.entry(tid).or_default().pop();
                assert_eq!(
                    top.as_deref(),
                    Some(name.as_str()),
                    "unbalanced track {tid}"
                );
                pairs += 1;
            }
            "M" => {
                assert_eq!(name, "thread_name");
                named_tracks.insert(tid);
            }
            _ => {}
        }
    }
    assert!(pairs > 0, "no spans in the chrome trace");
    assert!(
        stacks.values().all(Vec::is_empty),
        "every track must close all spans"
    );
    assert!(
        span_tracks.len() >= 2,
        "expected main + at least one worker track, got {span_tracks:?}"
    );
    for t in &span_tracks {
        assert!(named_tracks.contains(t), "track {t} has no thread_name");
    }
}

#[test]
fn flame_stacks_sum_to_root_inclusive_time() {
    let vase = vase();
    let json_path = trace_path("flame_json");
    let flame_path = trace_path("flame_folded");
    let out = ddb()
        .args([
            "query",
            &vase,
            "--semantics",
            "egcwa",
            "--literal",
            "grounded",
            "--trace-json",
            &json_path,
            "--flame",
            &flame_path,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
    std::fs::remove_file(&json_path).ok();
    let folded = std::fs::read_to_string(&flame_path).unwrap();
    std::fs::remove_file(&flame_path).ok();
    // Single-threaded run: the one root span is cmd.query; the folded
    // exclusive values must sum to exactly its inclusive duration.
    let events = doc.get("events").unwrap().as_arr().unwrap();
    let root_ns = events
        .iter()
        .find(|e| {
            e.get("type").and_then(|t| t.as_str()) == Some("span_exit")
                && e.get("name").and_then(|n| n.as_str()) == Some("cmd.query")
                && e.get("depth").and_then(Json::as_u64) == Some(0)
        })
        .and_then(|e| e.get("dur_ns").unwrap().as_u64())
        .expect("root span exit in the event stream");
    let mut sum = 0u64;
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("folded line");
        assert!(stack.starts_with("cmd.query"), "stack rooted at cmd.query");
        sum += value.parse::<u64>().expect("folded value");
    }
    assert_eq!(sum, root_ns, "folded stacks must sum to root inclusive");
}

#[test]
fn histogram_counts_match_across_thread_widths() {
    let layers = layers();
    let observe = |threads: &str| -> (u64, u64) {
        let doc = run_and_parse(&format!("width{threads}"), &batch_args(&layers, threads));
        let solves = doc
            .get("counters")
            .unwrap()
            .get("sat.solves")
            .map_or(0, |j| j.as_u64().unwrap());
        let hist_count = doc
            .get("histograms")
            .unwrap()
            .get("sat.solve.ns")
            .map_or(0, |h| h.get("count").unwrap().as_u64().unwrap());
        (solves, hist_count)
    };
    let w1 = observe("1");
    let w2 = observe("2");
    let w8 = observe("8");
    assert!(w1.0 > 0, "the batch must call the oracle");
    assert_eq!(w1, w2, "histogram/counter totals must not depend on width");
    assert_eq!(w1, w8, "histogram/counter totals must not depend on width");
    assert_eq!(
        w1.0, w1.1,
        "every SAT call records exactly one latency sample"
    );
}

/// Recursively checks `inclusive_ns >= sum(children inclusive_ns)` and
/// accumulates `calls` for the named span.
fn walk_tree(node: &Json, span: &str, calls: &mut u64) {
    let incl = node.get("inclusive_ns").unwrap().as_u64().unwrap();
    if node.get("name").unwrap().as_str() == Some(span) {
        *calls += node.get("calls").unwrap().as_u64().unwrap();
    }
    let children = node.get("children").unwrap().as_arr().unwrap();
    let child_sum: u64 = children
        .iter()
        .map(|c| c.get("inclusive_ns").unwrap().as_u64().unwrap())
        .sum();
    assert!(
        incl >= child_sum,
        "span tree not monotone: {incl} < {child_sum}"
    );
    for c in children {
        walk_tree(c, span, calls);
    }
}

#[test]
fn trace_subcommand_reports_monotone_span_tree() {
    let layers = layers();
    let out = ddb()
        .args(["trace", &layers, "--query", "covered(gear)", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "ddb trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = parse(&String::from_utf8_lossy(&out.stdout)).expect("trace report is valid JSON");
    assert_eq!(doc.get("command").unwrap().as_str(), Some("trace"));
    assert_eq!(doc.get("answer").unwrap().as_bool(), Some(true));
    let oracle = doc.get("oracle_calls").unwrap().as_u64().unwrap();
    assert!(oracle >= 1);
    let spans = doc.get("spans").unwrap().as_arr().unwrap();
    assert!(!spans.is_empty(), "span tree must not be empty");
    assert_eq!(spans[0].get("name").unwrap().as_str(), Some("cmd.trace"));
    let mut sat_calls = 0u64;
    for root in spans {
        walk_tree(root, "sat.solve", &mut sat_calls);
    }
    assert_eq!(
        sat_calls, oracle,
        "sat.solve tree calls must equal the sat.solves counter"
    );
}

#[test]
fn trace_subcommand_prints_text_tree() {
    let layers = layers();
    let out = ddb()
        .args(["trace", &layers, "--query", "covered(gear)", "--top", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("covered(gear): inferred"), "{stdout}");
    for column in ["span", "calls", "incl", "excl", "oracle", "p99"] {
        assert!(stdout.contains(column), "missing column {column}: {stdout}");
    }
    assert!(stdout.contains("sat.solve"), "missing sat.solve: {stdout}");
}
