//! End-to-end pipeline tests through the public facade: text → parse →
//! classify → query under every applicable semantics → answers consistent
//! with the characteristic model sets.

use disjunctive_db::prelude::*;
use disjunctive_db::workloads::queries::random_formula;

const PROGRAMS: &[&str] = &[
    "a | b.",
    "a | b. c :- a, b.",
    "a | b. :- a, b. c :- a, b.",
    "win :- not lose. lose :- not win.",
    "a. b :- not a. c | d :- not b.",
    "p | q. r :- p. r :- q. :- r, s.",
    "x0 | x1 | x2. x3 :- x0, x1. x4 :- x3. :- x4, x2.",
];

#[test]
fn parse_display_roundtrip() {
    for src in PROGRAMS {
        let db = parse_program(src).unwrap();
        let text = display_database(&db);
        let db2 = parse_program(&text).unwrap();
        assert_eq!(db.rules(), db2.rules(), "{src}");
        assert_eq!(db.num_atoms(), db2.num_atoms(), "{src}");
    }
}

#[test]
fn inference_consistent_with_model_sets() {
    for (pi, src) in PROGRAMS.iter().enumerate() {
        let db = parse_program(src).unwrap();
        for id in SemanticsId::ALL {
            if id == SemanticsId::Pdsm {
                continue; // 3-valued: models() reports totals only
            }
            let cfg = SemanticsConfig::new(id);
            let mut cost = Cost::new();
            let Ok(models) = cfg.models(&db, &mut cost) else {
                continue;
            };
            for fs in 0..4u64 {
                let f = random_formula(db.num_atoms(), 5, fs + 10 * pi as u64);
                let expected = models.iter().all(|m| f.eval(m));
                let got = cfg.infers_formula(&db, &f, &mut cost).unwrap();
                assert_eq!(got, expected, "{id} on `{src}` formula seed {fs}");
            }
            assert_eq!(
                cfg.has_model(&db, &mut cost).unwrap(),
                !models.is_empty(),
                "{id} existence on `{src}`"
            );
        }
    }
}

#[test]
fn classification_matches_syntax() {
    let cases = [
        ("a | b.", DbClass::Positive),
        ("a | b. :- a, b.", DbClass::Deductive),
        ("a. b :- not a.", DbClass::Stratified),
        ("win :- not lose. lose :- not win.", DbClass::Normal),
    ];
    for (src, expected) in cases {
        assert_eq!(parse_program(src).unwrap().class(), expected, "{src}");
    }
}

#[test]
fn cost_accounting_monotone() {
    // Costs accumulate across queries in one Cost record.
    let db = parse_program("a | b. c :- a, b.").unwrap();
    let cfg = SemanticsConfig::new(SemanticsId::Gcwa);
    let mut cost = Cost::new();
    let f = parse_formula("!c", db.symbols()).unwrap();
    cfg.infers_formula(&db, &f, &mut cost).unwrap();
    let first = cost.sat_calls;
    assert!(first > 0);
    cfg.infers_formula(&db, &f, &mut cost).unwrap();
    assert!(cost.sat_calls >= 2 * first);
}

#[test]
fn unsupported_semantics_fail_gracefully() {
    let db = parse_program("a :- not b. b :- not a.").unwrap();
    let mut cost = Cost::new();
    for id in [SemanticsId::Ddr, SemanticsId::Pws, SemanticsId::Icwa] {
        let err = SemanticsConfig::new(id)
            .infers_literal(&db, Atom::new(0).pos(), &mut cost)
            .unwrap_err();
        assert_eq!(err.semantics, id);
        assert!(!err.reason.is_empty());
    }
}

#[test]
fn large_tractable_pipeline() {
    // The tractable path scales: a 20k-atom Horn chain through parse-free
    // construction, DDR negative literal in well under a second.
    use disjunctive_db::workloads::structured::horn_chain;
    let n = 20_000;
    let db = horn_chain(n);
    let mut cost = Cost::new();
    let start = std::time::Instant::now();
    let ans = ddr::infers_literal(&db, Atom::new((n - 1) as u32).neg(), &mut cost).unwrap();
    assert!(!ans, "the chain derives every atom");
    assert_eq!(cost.sat_calls, 0);
    assert!(
        start.elapsed().as_secs_f64() < 1.0,
        "tractable cell must be fast"
    );
}
