//! Seeded parser-robustness loop (in-repo fuzzing, no external tooling):
//! mutate the shipped example programs with a deterministic xorshift RNG
//! and require that the propositional and Datalog∨ parsers — and the
//! formula parser — return `Err` on garbage instead of panicking.
//!
//! The corpus is every `examples/*.dl` / `examples/*.dlv` file; mutations
//! are byte flips, truncations, duplications, splices of token-level
//! characters, and UTF-8 round-trips through `from_utf8_lossy`, so both
//! lexer and grammar edge cases get exercised. Deterministic seeds keep
//! failures replayable: a panic reports the seed and round that found it.

use ddb_ground::parse::parse_datalog;
use ddb_logic::parse::{parse_formula, parse_program};
use ddb_logic::rng::XorShift64Star;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Characters the grammars treat specially, plus some that none do —
/// splicing these in reaches error paths a uniform byte flip rarely hits.
const TOKENS: &[&str] = &[
    ":-", "|", ".", ",", "(", ")", "not ", "%", "&", "v ", "-", "<->", "->", "~", "X", "0", " ",
    "\n", "\u{00e9}", "\u{2200}",
];

fn seed_corpus() -> Vec<String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut seeds: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples directory")
        .filter_map(|e| {
            let path = e.ok()?.path();
            let ext = path.extension()?.to_str()?;
            (ext == "dl" || ext == "dlv").then(|| std::fs::read_to_string(&path).ok())?
        })
        .collect();
    assert!(!seeds.is_empty(), "no .dl/.dlv seeds under examples/");
    // A couple of hand-written edge seeds: empty, comment-only, lone rule.
    seeds.push(String::new());
    seeds.push("% comment only\n".to_owned());
    seeds.push("a | b :- c, not d.".to_owned());
    seeds
}

fn mutate(rng: &mut XorShift64Star, seed: &str) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    for _ in 0..=rng.gen_range(0, 4) {
        match rng.gen_range(0, 5) {
            // Flip a byte to an arbitrary value (possibly invalid UTF-8,
            // healed by from_utf8_lossy below — the parser must cope with
            // replacement characters too).
            0 if !bytes.is_empty() => {
                let i = rng.gen_range(0, bytes.len());
                bytes[i] = (rng.next_u64() & 0xFF) as u8;
            }
            // Truncate at a random point.
            1 if !bytes.is_empty() => {
                bytes.truncate(rng.gen_range(0, bytes.len()));
            }
            // Duplicate a random slice onto the end.
            2 if !bytes.is_empty() => {
                let i = rng.gen_range(0, bytes.len());
                let j = rng.gen_range_inclusive(i, bytes.len());
                let slice = bytes[i..j].to_vec();
                bytes.extend_from_slice(&slice);
            }
            // Splice a grammar-relevant token at a random position.
            3 => {
                let tok = TOKENS[rng.gen_range(0, TOKENS.len())].as_bytes();
                let i = rng.gen_range_inclusive(0, bytes.len());
                bytes.splice(i..i, tok.iter().copied());
            }
            // Swap two bytes.
            _ if bytes.len() >= 2 => {
                let i = rng.gen_range(0, bytes.len());
                let j = rng.gen_range(0, bytes.len());
                bytes.swap(i, j);
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn parsers_never_panic_on_mutated_inputs() {
    let seeds = seed_corpus();
    let symbols_db = parse_program("a | b. c :- a, not b.").unwrap();
    for round in 0..500u64 {
        let mut rng = XorShift64Star::seed_from_u64(0xF022_0000 + round);
        let seed = &seeds[rng.gen_range(0, seeds.len())];
        let mutant = mutate(&mut rng, seed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_program(&mutant);
            let _ = parse_datalog(&mutant);
            // Formula parser over the first line, against a fixed symbol
            // table — it must reject unknown atoms, not panic on them.
            let first = mutant.lines().next().unwrap_or("");
            let _ = parse_formula(first, symbols_db.symbols());
        }));
        assert!(
            result.is_ok(),
            "parser panicked on round {round}; mutant:\n{mutant}"
        );
    }
}

#[test]
fn accepted_mutants_round_trip_through_display() {
    // Any mutant the parser accepts must re-parse from its own rendering
    // — a cheap oracle that the parser and printer stay in sync even on
    // weird-but-legal inputs the fuzzer stumbles into.
    let seeds = seed_corpus();
    let mut accepted = 0u32;
    for round in 0..500u64 {
        let mut rng = XorShift64Star::seed_from_u64(0xF022_8000 + round);
        let seed = &seeds[rng.gen_range(0, seeds.len())];
        let mutant = mutate(&mut rng, seed);
        if let Ok(db) = parse_program(&mutant) {
            accepted += 1;
            let rendered = ddb_logic::parse::display_database(&db);
            let reparsed = parse_program(&rendered).unwrap_or_else(|e| {
                panic!("rendering of accepted mutant fails to re-parse: {e}\n{rendered}")
            });
            assert_eq!(db.len(), reparsed.len(), "rule count drifts:\n{rendered}");
        }
    }
    assert!(accepted > 0, "mutator never produced a legal program");
}
