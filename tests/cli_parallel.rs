//! End-to-end checks of the parallel-evaluation surface of the `ddb`
//! binary: the `--threads` flag (validation, byte-identical output at
//! every width), batched `--formula` queries (ordering, flag conflicts),
//! the budget→worker interrupt path under `--threads`, and EPIPE
//! tolerance when a downstream consumer closes the pipe early.

use ddb_reductions::dsm_hardness::exists_forall_to_dsm_existence;
use ddb_reductions::qbf::parity_family;
use disjunctive_db::prelude::display_database;
use std::io::Read;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn ddb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddb"))
}

fn temp_file(name: &str, contents: &str) -> String {
    let path =
        std::env::temp_dir().join(format!("ddb_cli_parallel_{name}_{}.dl", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path.to_str().unwrap().to_owned()
}

fn exit_code(cmd: &mut Command) -> i32 {
    cmd.output().expect("running ddb").status.code().unwrap()
}

/// Three disconnected components, so `exists` takes the islands route.
const ISLANDS: &str = "a | b. c :- a, b.\np | q. :- p, q.\nx :- not y. y :- not x.";

#[test]
fn thread_width_is_invisible_in_the_output() {
    let path = temp_file("width", ISLANDS);
    let mut reference: Option<Vec<u8>> = None;
    for width in ["1", "2", "8"] {
        let out = ddb()
            .args(["exists", &path, "--semantics", "dsm", "--threads", width])
            .output()
            .unwrap();
        assert_eq!(out.status.code().unwrap(), 0, "threads {width}");
        match &reference {
            None => reference = Some(out.stdout),
            Some(r) => assert_eq!(
                r, &out.stdout,
                "threads {width}: stdout must be byte-identical to --threads 1"
            ),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn invalid_thread_counts_exit_four() {
    let path = temp_file("badwidth", "a | b.");
    for bad in ["0", "xyz", ""] {
        let out = ddb()
            .args(["exists", &path, "--semantics", "gcwa", "--threads", bad])
            .output()
            .unwrap();
        assert_eq!(out.status.code().unwrap(), 4, "--threads {bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("threads"), "diagnostic names the flag: {err}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn batch_query_answers_in_command_line_order() {
    let path = temp_file("batch", "a | b. c :- a. c :- b.");
    for width in ["1", "4"] {
        let out = ddb()
            .args([
                "query",
                &path,
                "--semantics",
                "gcwa",
                "--threads",
                width,
                "--formula",
                "c",
                "--formula",
                "a & b",
                "--formula",
                "a | b",
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code().unwrap(), 0, "threads {width}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(
            lines,
            vec!["c: inferred", "a & b: not inferred", "a | b: inferred"],
            "threads {width}: one line per formula, in command order"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn batch_rejects_incompatible_flags() {
    let path = temp_file("batchbad", "a | b.");
    let batch = ["--formula", "a", "--formula", "b"];
    for extra in [&["--literal", "a"][..], &["--brave"], &["--explain"]] {
        let mut args = vec!["query", path.as_str()];
        args.extend_from_slice(&batch);
        args.extend_from_slice(extra);
        assert_eq!(exit_code(ddb().args(&args)), 4, "extra {extra:?}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn batch_under_zero_oracle_budget_exits_exhausted() {
    let path = temp_file("batchgov", "a | b. c :- a. c :- b.");
    let out = ddb()
        .args([
            "query",
            &path,
            "--semantics",
            "gcwa",
            "--threads",
            "4",
            "--formula",
            "c",
            "--formula",
            "a | b",
            "--max-oracle-calls",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code().unwrap(), 3, "resource-exhausted exit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unknown"), "three-valued answers: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("oracle_calls"),
        "stderr names the exhausted resource: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn timeout_with_many_threads_still_exits_exhausted_promptly() {
    // The CI parallel smoke: a Σᵖ₂-hard existence question, 8 workers, a
    // 100 ms deadline — the deadline must reach every worker and the
    // process must exit 3 well within the promptness bound.
    let inst = exists_forall_to_dsm_existence(&parity_family(12).complement());
    let path = temp_file("partimeout", &display_database(&inst.db));
    let started = Instant::now();
    let out = ddb()
        .args([
            "exists",
            &path,
            "--semantics",
            "dsm",
            "--threads",
            "8",
            "--timeout-ms",
            "100",
        ])
        .output()
        .unwrap();
    let elapsed = started.elapsed();
    assert_eq!(out.status.code().unwrap(), 3, "resource-exhausted exit");
    assert!(
        elapsed < Duration::from_secs(2),
        "interruption must be prompt, took {elapsed:?}"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("unknown"));
    std::fs::remove_file(&path).ok();
}

/// Spawns `ddb` with `args`, reads at most `keep` bytes of stdout, then
/// closes the pipe and waits — the downstream-`head` scenario.
fn run_with_early_close(args: &[&str], keep: usize) -> std::process::ExitStatus {
    let mut child = ddb()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning ddb");
    let mut stdout = child.stdout.take().unwrap();
    let mut buf = vec![0u8; keep.max(1)];
    let _ = stdout.read(&mut buf);
    drop(stdout); // EPIPE for every later write
    let status = child.wait().expect("waiting for ddb");
    let mut err = String::new();
    child.stderr.take().unwrap().read_to_string(&mut err).ok();
    assert!(
        !err.contains("panicked"),
        "closed pipe must not panic: {err}"
    );
    status
}

#[test]
fn closed_stdout_pipe_never_panics() {
    // `ddb ... | head -1` writes to a closed pipe mid-report. The binary
    // must swallow the broken pipe and exit through its normal path
    // instead of aborting on an io panic (the historical behavior of the
    // raw `println!` sites).
    let path = temp_file("epipe", "a | b. c :- a. c :- b. d | e :- c.");
    let profile = run_with_early_close(&["profile", &path, "--threads", "4"], 8);
    assert_eq!(profile.code(), Some(0), "profile under closed pipe");
    let check = run_with_early_close(&["check", &path, "--json"], 8);
    assert!(
        check.code().is_some(),
        "check must exit, not die on a signal"
    );
    let batch = run_with_early_close(
        &[
            "query",
            &path,
            "--semantics",
            "egcwa",
            "--formula",
            "c",
            "--formula",
            "d | e",
            "--formula",
            "a | b",
        ],
        4,
    );
    assert_eq!(batch.code(), Some(0), "batch query under closed pipe");
    std::fs::remove_file(&path).ok();
}
