//! End-to-end checks of `ddb explain`: plan output shape, determinism
//! across runs and `--threads` widths, the `--execute` plan-vs-actual
//! audit, `--json` well-formedness, plan lints, and EPIPE tolerance when
//! a downstream consumer closes the pipe early.

use std::io::Read;
use std::process::{Command, Stdio};

fn ddb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddb"))
}

fn temp_file(name: &str, contents: &str) -> String {
    let path =
        std::env::temp_dir().join(format!("ddb_cli_explain_{name}_{}.dl", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path.to_str().unwrap().to_owned()
}

/// A database that exercises every interesting plan shape: a proper
/// backward slice for `c`, a stratified negation to peel, and enough
/// structure that the ten semantics pick different routes.
const MIXED: &str = "a | b. c :- a. c :- b. d :- not c. e.";

#[test]
fn explain_is_byte_identical_across_runs_and_thread_widths() {
    let path = temp_file("det", MIXED);
    let mut reference: Option<Vec<u8>> = None;
    for args in [
        vec!["explain", path.as_str(), "--query", "c"],
        vec!["explain", path.as_str(), "--query", "c"],
        vec!["explain", path.as_str(), "--query", "c", "--threads", "1"],
        vec!["explain", path.as_str(), "--query", "c", "--threads", "8"],
    ] {
        let out = ddb().args(&args).output().unwrap();
        assert_eq!(out.status.code().unwrap(), 0, "{args:?}");
        match &reference {
            None => reference = Some(out.stdout),
            Some(r) => assert_eq!(r, &out.stdout, "{args:?} must match the first run"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn explain_prints_one_plan_per_semantics_with_routes_and_bounds() {
    let path = temp_file("shape", MIXED);
    let out = ddb()
        .args(["explain", &path, "--query", "c"])
        .output()
        .unwrap();
    assert_eq!(out.status.code().unwrap(), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("query `c` (lit problem)"), "{text}");
    assert!(text.contains("adornments:"), "{text}");
    for name in [
        "GCWA", "DDR", "PWS", "EGCWA", "CCWA", "ECWA", "ICWA", "PERF", "DSM", "PDSM",
    ] {
        assert!(
            text.contains(&format!("== {name}")),
            "missing {name}: {text}"
        );
    }
    assert!(text.contains("oracle calls"), "{text}");
    assert!(
        text.contains("split") && text.contains("class"),
        "routes and classes in the tree: {text}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn execute_audit_passes_on_the_layers_example() {
    let out = ddb()
        .args([
            "explain",
            "examples/layers.dlv",
            "--query",
            "audited(acme)",
            "--execute",
        ])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code().unwrap(), 0, "{text}");
    assert!(text.contains("audit "), "{text}");
    assert!(!text.contains("MISMATCH"), "{text}");
}

#[test]
fn execute_audit_covers_every_supported_semantics() {
    let path = temp_file("audit", MIXED);
    let out = ddb()
        .args(["explain", &path, "--query", "c", "--execute"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code().unwrap(), 0, "{text}");
    // DDR and PWS reject negation; the other eight must all audit ok.
    let ok_lines = text
        .lines()
        .filter(|l| l.starts_with("audit ") && l.ends_with("ok"));
    assert_eq!(ok_lines.count(), 8, "{text}");
    assert!(!text.contains("MISMATCH"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn explain_json_is_well_formed() {
    let path = temp_file("json", MIXED);
    let out = ddb()
        .args(["explain", &path, "--query", "c", "--execute", "--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code().unwrap(), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    let doc = ddb_obs::json::parse(&text).expect("explain --json must parse");
    assert_eq!(doc.get("problem").and_then(|p| p.as_str()), Some("lit"));
    let plans = doc.get("plans").and_then(|p| p.as_arr()).unwrap();
    assert_eq!(plans.len(), 10, "one plan entry per semantics");
    let audits = doc.get("audits").and_then(|a| a.as_arr()).unwrap();
    assert!(!audits.is_empty());
    for audit in audits {
        assert_eq!(
            audit.get("ok").and_then(|o| o.as_bool()),
            Some(true),
            "{text}"
        );
    }
    assert_eq!(doc.get("audit_failures").and_then(|n| n.as_u64()), Some(0));
    std::fs::remove_file(&path).ok();
}

#[test]
fn infeasible_budget_fires_ddb015() {
    let path = temp_file("budget", MIXED);
    let out = ddb()
        .args(["explain", &path, "--query", "c", "--max-oracle-calls", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code().unwrap(), 0);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DDB015"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_budget_is_a_usage_error() {
    let path = temp_file("badbudget", MIXED);
    let out = ddb()
        .args(["explain", &path, "--max-oracle-calls", "lots"])
        .output()
        .unwrap();
    assert_eq!(out.status.code().unwrap(), 4);
    assert!(String::from_utf8_lossy(&out.stderr).contains("max-oracle-calls"));
    std::fs::remove_file(&path).ok();
}

/// Spawns `ddb` with `args`, reads at most `keep` bytes of stdout, then
/// closes the pipe and waits — the downstream-`head` scenario.
fn run_with_early_close(args: &[&str], keep: usize) -> std::process::ExitStatus {
    let mut child = ddb()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning ddb");
    let mut stdout = child.stdout.take().unwrap();
    let mut buf = vec![0u8; keep.max(1)];
    let _ = stdout.read(&mut buf);
    drop(stdout); // EPIPE for every later write
    let status = child.wait().expect("waiting for ddb");
    let mut err = String::new();
    child.stderr.take().unwrap().read_to_string(&mut err).ok();
    assert!(
        !err.contains("panicked"),
        "closed pipe must not panic: {err}"
    );
    status
}

#[test]
fn closed_stdout_pipe_never_panics() {
    let path = temp_file("epipe", MIXED);
    let plain = run_with_early_close(&["explain", &path, "--query", "c"], 8);
    assert_eq!(plain.code(), Some(0), "explain under closed pipe");
    let executed = run_with_early_close(&["explain", &path, "--query", "c", "--execute"], 8);
    assert_eq!(
        executed.code(),
        Some(0),
        "explain --execute under closed pipe"
    );
    let json = run_with_early_close(&["explain", &path, "--json"], 8);
    assert_eq!(json.code(), Some(0), "explain --json under closed pipe");
    std::fs::remove_file(&path).ok();
}
