//! Facts stated in the paper itself, pinned as executable tests.

use disjunctive_db::prelude::*;
use disjunctive_db::reductions::{dsm_hardness, gcwa_hardness, qbf, uminsat};

/// Section 2 running example: `DB = {a ∨ b, b ← a, c ← b... }`; the paper
/// lists `M(DB)`, `MM(DB)` and `MM(DB; P; Z)` for a 3-atom example:
/// `DB = {a ∨ b}` over `V = {a, b, c}` with
/// `M(DB) = {{b},{a},{a,b},{a,c},{b,c},{a,b,c}}`, `MM = {{a},{b}}`, and
/// for ⟨P;Q;Z⟩ = ⟨{a};{b};{c}⟩:
/// `MM(DB;P;Z) = {{b},{b,c},{a},{a,c}}`.
#[test]
fn section_2_running_example() {
    let mut symbols = Symbols::new();
    let a = symbols.intern("a");
    let b = symbols.intern("b");
    let c = symbols.intern("c");
    let mut db = Database::new(symbols);
    db.add_rule(Rule::fact([a, b]));

    let mut cost = Cost::new();
    let m = disjunctive_db::models::classical::all_models(&db, &mut cost).unwrap();
    assert_eq!(m.len(), 6, "2^3 minus the two a=b=0 interpretations");

    let mm = disjunctive_db::models::minimal::minimal_models(&db, &mut cost).unwrap();
    let interp = |atoms: &[Atom]| Interpretation::from_atoms(3, atoms.iter().copied());
    assert_eq!(mm, vec![interp(&[a]), interp(&[b])]);

    let part = Partition::from_p_q(3, [a], [b]);
    let pz = disjunctive_db::models::minimal::pz_minimal_models(&db, &part, &mut cost).unwrap();
    let mut expected = vec![interp(&[b]), interp(&[b, c]), interp(&[a]), interp(&[a, c])];
    expected.sort();
    assert_eq!(pz, expected);
}

/// Example 3.1: `DB = {a ∨ b, ← a ∧ b, c ← a ∧ b}` — `DDR(DB) ⊭ ¬c`.
#[test]
fn example_3_1() {
    let db = parse_program("a | b. :- a, b. c :- a, b.").unwrap();
    let c = db.symbols().lookup("c").unwrap();
    let mut cost = Cost::new();
    assert!(!ddr::infers_literal(&db, c.neg(), &mut cost).unwrap());
    // Chan's improvement motivation: GCWA does infer ¬c here.
    assert!(gcwa::infers_literal(&db, c.neg(), &mut cost).unwrap());
    // And EGCWA (= minimal models) likewise.
    assert!(egcwa::infers_literal(&db, c.neg(), &mut cost).unwrap());
}

/// `EGCWA(DB) = MM(DB)` — the paper's stated characterization.
#[test]
fn egcwa_is_minimal_models() {
    for src in [
        "a | b. c :- a.",
        "a | b | c. :- a, b.",
        "p :- q. q | r. :- r, p.",
    ] {
        let db = parse_program(src).unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            SemanticsConfig::new(SemanticsId::Egcwa)
                .models(&db, &mut cost)
                .unwrap(),
            disjunctive_db::models::minimal::minimal_models(&db, &mut cost).unwrap(),
            "{src}"
        );
    }
}

/// `ECWA_{P;Z}(DB) = CIRC_{P;Z}(DB)` in the propositional case (the
/// equivalence the paper imports from Lifschitz/GPP).
#[test]
fn ecwa_equals_circumscription() {
    let db = parse_program("a | b. c :- a. d | e :- c.").unwrap();
    let n = db.num_atoms();
    let syms = db.symbols();
    let part = Partition::from_p_q(
        n,
        [syms.lookup("a").unwrap(), syms.lookup("c").unwrap()],
        [syms.lookup("b").unwrap()],
    );
    let mut cost = Cost::new();
    assert_eq!(
        disjunctive_db::core::ecwa::circ_models_brute(&db, &part),
        disjunctive_db::core::ecwa::models(&db, &part, &mut cost).unwrap()
    );
}

/// `DSM(DB) ⊆ MM(DB)`, and `DSM(DB) = MM(DB)` for positive DB \[20\].
#[test]
fn dsm_facts() {
    let positive = parse_program("a | b. c :- a, b.").unwrap();
    let mut cost = Cost::new();
    assert_eq!(
        dsm::models(&positive, &mut cost).unwrap(),
        disjunctive_db::models::minimal::minimal_models(&positive, &mut cost).unwrap()
    );
    let normal = parse_program("a | b :- not c. c :- not d. d :- not c.").unwrap();
    let stable = dsm::models(&normal, &mut cost).unwrap();
    let minimal = disjunctive_db::models::minimal::minimal_models(&normal, &mut cost).unwrap();
    for m in &stable {
        assert!(minimal.contains(m));
    }
}

/// Theorem 3.1 (shape): the 2QBF reduction and its agreement with
/// brute-force validity — checked exhaustively on a deterministic sweep.
#[test]
fn theorem_3_1_reduction() {
    for seed in 0..30 {
        let q = qbf::random_forall_exists(3, 2, 5, 2, seed);
        let inst = gcwa_hardness::forall_exists_to_gcwa(&q);
        assert!(inst.db.is_positive(), "Theorem 3.1 needs a positive DDB");
        let mut cost = Cost::new();
        assert_eq!(
            gcwa::infers_literal(&inst.db, inst.w.neg(), &mut cost).unwrap(),
            q.valid_brute(),
            "seed {seed}"
        );
    }
}

/// Σᵖ₂-hardness shape for DSM existence (Section 5.2).
#[test]
fn dsm_existence_reduction() {
    for seed in 0..30 {
        let q = qbf::random_forall_exists(3, 2, 5, 2, seed).complement();
        let inst = dsm_hardness::exists_forall_to_dsm_existence(&q);
        let mut cost = Cost::new();
        assert_eq!(
            dsm::has_model(&inst.db, &mut cost).unwrap(),
            q.true_brute(),
            "seed {seed}"
        );
    }
}

/// Proposition 5.4 (shape): the UNSAT → UMINSAT reduction.
#[test]
fn proposition_5_4_reduction() {
    // A fixed unsatisfiable CNF and a fixed satisfiable one.
    let unsat = vec![vec![(0u32, true)], vec![(0u32, false)]];
    let db = uminsat::unsat_to_uminsat(1, &unsat);
    let mut cost = Cost::new();
    assert!(uminsat::has_unique_minimal_model(&db, &mut cost).unwrap());

    let sat = vec![vec![(0u32, true), (1, true)]];
    let db = uminsat::unsat_to_uminsat(2, &sat);
    assert!(!uminsat::has_unique_minimal_model(&db, &mut cost).unwrap());
}

/// Theorem 4.2's degenerate stratification: with `S = ⟨V⟩`, ICWA literal
/// inference on a positive DDB coincides with EGCWA — so the Πᵖ₂-hardness
/// carries over.
#[test]
fn theorem_4_2_degenerate_stratification() {
    let q = qbf::parity_family(2);
    let inst = gcwa_hardness::forall_exists_to_gcwa(&q);
    let mut cost = Cost::new();
    let icwa_ans = SemanticsConfig::new(SemanticsId::Icwa)
        .infers_literal(&inst.db, inst.w.neg(), &mut cost)
        .unwrap()
        .definite();
    let egcwa_ans = egcwa::infers_literal(&inst.db, inst.w.neg(), &mut cost).unwrap();
    assert_eq!(icwa_ans, egcwa_ans);
    assert!(icwa_ans, "parity family is valid");
}

/// The stratified-consistency claim behind Table 2's ICWA `O(1)` cell:
/// a stratified database without integrity clauses always has ICWA (and
/// perfect, and stable) models.
#[test]
fn stratifiability_asserts_consistency() {
    use disjunctive_db::workloads::random::random_stratified_db;
    for seed in 0..20 {
        let db = random_stratified_db(8, 14, 3, seed);
        if db.has_integrity_clauses() {
            continue;
        }
        let mut cost = Cost::new();
        for id in [SemanticsId::Icwa, SemanticsId::Perf, SemanticsId::Dsm] {
            assert!(
                SemanticsConfig::new(id)
                    .has_model(&db, &mut cost)
                    .unwrap()
                    .definite(),
                "{id} seed {seed}"
            );
        }
    }
}

/// PDSM extends the well-founded semantics: on non-disjunctive programs
/// the truth-minimal partial stable model is the well-founded model.
#[test]
fn pdsm_contains_well_founded_behaviour() {
    // p ← ¬q. q ← ¬p. r ← ¬r: WFS leaves everything undefined.
    let db = parse_program("p :- not q. q :- not p. r :- not r.").unwrap();
    let mut cost = Cost::new();
    let models = pdsm::models(&db, &mut cost).unwrap();
    let all_undef = PartialInterpretation::undefined(3);
    assert!(
        models.contains(&all_undef),
        "the well-founded model (everything ½) is partial stable"
    );
    // And DSM has none (the odd loop kills total stability).
    assert!(!dsm::has_model(&db, &mut cost).unwrap());
}
