//! Cross-semantics integration tests: the structural relationships the
//! paper states (or uses silently) between the ten semantics, checked on
//! randomized instance families spanning all syntactic classes.

use disjunctive_db::prelude::*;
use disjunctive_db::workloads::random::{random_db, random_stratified_db, DbSpec};

fn models_of(db: &Database, id: SemanticsId, cost: &mut Cost) -> Vec<Interpretation> {
    SemanticsConfig::new(id)
        .models(db, cost)
        .expect("applicable")
        .expect_complete()
}

fn subset(a: &[Interpretation], b: &[Interpretation]) -> bool {
    a.iter().all(|m| b.contains(m))
}

#[test]
fn model_set_inclusions_on_positive_dbs() {
    // On positive DBs: MM = EGCWA ⊆ GCWA ⊆ DDR (WGCWA is weaker), and
    // MM ⊆ PWS ⊆ M(DB) ∩ (active-closed).
    for seed in 0..25 {
        let db = random_db(&DbSpec::positive(6, 10), seed);
        let mut cost = Cost::new();
        let egcwa = models_of(&db, SemanticsId::Egcwa, &mut cost);
        let gcwa = models_of(&db, SemanticsId::Gcwa, &mut cost);
        let ddr = models_of(&db, SemanticsId::Ddr, &mut cost);
        let pws = models_of(&db, SemanticsId::Pws, &mut cost);
        assert!(subset(&egcwa, &gcwa), "MM ⊆ GCWA (seed {seed})");
        assert!(subset(&gcwa, &ddr), "GCWA ⊆ DDR (seed {seed})");
        assert!(subset(&egcwa, &pws), "MM ⊆ PM (seed {seed})");
        assert!(subset(&pws, &ddr), "PM ⊆ DDR models (seed {seed})");
    }
}

#[test]
fn inference_strength_ordering() {
    // Smaller model set ⇒ stronger inference: everything EGCWA refuses,
    // GCWA refuses; everything DDR infers, GCWA infers.
    use disjunctive_db::workloads::queries::random_formula;
    for seed in 0..15 {
        let db = random_db(&DbSpec::positive(5, 8), seed);
        let f = random_formula(5, 5, seed);
        let mut cost = Cost::new();
        let ddr = disjunctive_db::core::ddr::infers_formula(&db, &f, &mut cost).unwrap();
        let gcwa = disjunctive_db::core::gcwa::infers_formula(&db, &f, &mut cost).unwrap();
        let egcwa = disjunctive_db::core::egcwa::infers_formula(&db, &f, &mut cost).unwrap();
        if ddr {
            assert!(gcwa, "DDR ⊨ F ⇒ GCWA ⊨ F (seed {seed})");
        }
        if gcwa {
            assert!(egcwa, "GCWA ⊨ F ⇒ EGCWA ⊨ F (seed {seed})");
        }
    }
}

#[test]
fn coincidences_on_positive_dbs() {
    // EGCWA = ECWA(minimize-all) = DSM = PERF = ICWA(⟨V⟩) on positive DBs.
    for seed in 0..25 {
        let db = random_db(&DbSpec::positive(6, 10), seed);
        let mut cost = Cost::new();
        let reference = models_of(&db, SemanticsId::Egcwa, &mut cost);
        for id in [
            SemanticsId::Ecwa,
            SemanticsId::Dsm,
            SemanticsId::Perf,
            SemanticsId::Icwa,
            SemanticsId::Pdsm,
        ] {
            assert_eq!(
                models_of(&db, id, &mut cost),
                reference,
                "{id} vs EGCWA (seed {seed})"
            );
        }
    }
}

#[test]
fn stable_models_are_minimal_and_perfect_on_stratified() {
    for seed in 0..25 {
        let db = random_stratified_db(8, 14, 3, seed);
        let mut cost = Cost::new();
        let stable = models_of(&db, SemanticsId::Dsm, &mut cost);
        let minimal = disjunctive_db::models::minimal::minimal_models(&db, &mut cost).unwrap();
        assert!(subset(&stable, &minimal), "DSM ⊆ MM (seed {seed})");
        // On stratified databases PERF = DSM (Przymusinski).
        let perfect = models_of(&db, SemanticsId::Perf, &mut cost);
        assert_eq!(stable, perfect, "PERF = DSM stratified (seed {seed})");
        // And ICWA captures the same model set.
        let icwa = models_of(&db, SemanticsId::Icwa, &mut cost);
        assert_eq!(perfect, icwa, "ICWA = PERF stratified (seed {seed})");
    }
}

#[test]
fn total_pdsm_equals_dsm_everywhere() {
    for seed in 0..20 {
        let db = random_db(&DbSpec::normal(5, 8), seed);
        let mut cost = Cost::new();
        let stable = disjunctive_db::core::dsm::models(&db, &mut cost).unwrap();
        let totals: Vec<Interpretation> = disjunctive_db::core::pdsm::models(&db, &mut cost)
            .unwrap()
            .into_iter()
            .filter(|p| p.is_total())
            .map(|p| p.to_total())
            .collect();
        let mut sorted = totals;
        sorted.sort();
        assert_eq!(sorted, stable, "seed {seed}");
    }
}

#[test]
fn ccwa_between_gcwa_and_nothing() {
    // CCWA with P = V is GCWA; with P = ∅ it closes nothing (model set =
    // all models, inference = classical entailment).
    use disjunctive_db::workloads::queries::random_formula;
    for seed in 0..15 {
        let db = random_db(&DbSpec::deductive(5, 8), seed);
        let f = random_formula(5, 5, seed + 100);
        let mut cost = Cost::new();
        let all_p = Partition::minimize_all(db.num_atoms());
        let no_p = Partition::from_p_q(db.num_atoms(), [], []);
        assert_eq!(
            disjunctive_db::core::ccwa::infers_formula(&db, &all_p, &f, &mut cost),
            disjunctive_db::core::gcwa::infers_formula(&db, &f, &mut cost),
            "CCWA(P=V) = GCWA (seed {seed})"
        );
        let classical = disjunctive_db::models::classical::entails(&db, &[], &f, &mut cost);
        assert_eq!(
            disjunctive_db::core::ccwa::infers_formula(&db, &no_p, &f, &mut cost),
            classical,
            "CCWA(P=∅) = classical (seed {seed})"
        );
    }
}

#[test]
fn existence_equivalences() {
    // For the CWA-family semantics, nonemptiness ⇔ classical
    // satisfiability on every class where they are defined.
    for seed in 0..20 {
        let db = random_db(&DbSpec::deductive(6, 12), seed);
        let mut cost = Cost::new();
        let sat = disjunctive_db::models::classical::is_satisfiable(&db, &mut cost).unwrap();
        for id in [
            SemanticsId::Gcwa,
            SemanticsId::Egcwa,
            SemanticsId::Ccwa,
            SemanticsId::Ecwa,
            SemanticsId::Ddr,
        ] {
            let cfg = SemanticsConfig::new(id);
            assert_eq!(
                cfg.has_model(&db, &mut cost).unwrap(),
                sat,
                "{id} existence ⇔ SAT (seed {seed})"
            );
        }
    }
}
