//! End-to-end checks of the `ddb check` exit-code contract and the
//! `ddb slice` subcommand, run against the real binary.
//!
//! `check` promises stable exit codes: 0 for a clean report, 1 when only
//! warning-level lints fired, 2 on any error — error-level diagnostics,
//! unreadable files, parse and safety failures — and `--strict` escalates
//! warnings to 2. Scripts (including our own CI) branch on these.

use disjunctive_db::obs::json::{parse, Json};
use std::path::PathBuf;
use std::process::Command;

fn ddb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddb"))
}

fn example(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
        .to_str()
        .unwrap()
        .to_owned()
}

fn temp_db(name: &str, source: &str) -> String {
    let path = std::env::temp_dir().join(format!("ddb_cli_check_{name}_{}.dl", std::process::id()));
    std::fs::write(&path, source).unwrap();
    path.to_str().unwrap().to_owned()
}

fn exit_code(cmd: &mut Command) -> i32 {
    cmd.output().expect("running ddb").status.code().unwrap()
}

#[test]
fn check_exits_zero_on_clean_database() {
    let path = temp_db("clean", "a | b. c :- a.");
    assert_eq!(exit_code(ddb().args(["check", &path])), 0);
    assert_eq!(exit_code(ddb().args(["check", &path, "--strict"])), 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_exits_one_on_warning_lints_and_two_under_strict() {
    // A duplicate fact is a warning-level lint (DDB004 family).
    let path = temp_db("dup", "a. a.");
    assert_eq!(exit_code(ddb().args(["check", &path])), 1);
    assert_eq!(exit_code(ddb().args(["check", &path, "--strict"])), 2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_exits_two_on_errors_parse_failures_and_missing_files() {
    // Error-level finding: a fact violating an integrity clause.
    let bad = temp_db("bad", "a. :- a.");
    assert_eq!(exit_code(ddb().args(["check", &bad])), 2);
    std::fs::remove_file(&bad).ok();

    let garbled = temp_db("garbled", "a |");
    assert_eq!(exit_code(ddb().args(["check", &garbled])), 2);
    std::fs::remove_file(&garbled).ok();

    assert_eq!(exit_code(ddb().args(["check", "/nonexistent/nope.dl"])), 2);
}

#[test]
fn check_emits_dead_and_subsumed_rule_lints() {
    // `c :- x.` is dead (x is never supportable): DDB009. The weaker
    // duplicate-modulo-negation rule is DDB010 material.
    let path = temp_db("dead", "a | b. c :- a. c :- b. c :- x, a.");
    let out = ddb().args(["check", &path]).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("DDB009"), "missing DDB009 in:\n{text}");
    assert_eq!(out.status.code().unwrap(), 1);
    std::fs::remove_file(&path).ok();

    // `p :- q, not u.` simplifies to `p :- q.` (u is never derivable),
    // which subsumes `p :- q, s.` — invisible to classical subsumption.
    let sub = temp_db("subsumed", "p :- q, not u. p :- q, s. q. s.");
    let out = ddb().args(["check", &sub]).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("DDB010"), "missing DDB010 in:\n{text}");
    std::fs::remove_file(&sub).ok();
}

#[test]
fn check_json_reports_the_same_findings() {
    let path = temp_db("json", "a. a.");
    let out = ddb().args(["check", &path, "--json"]).output().unwrap();
    assert_eq!(out.status.code().unwrap(), 1);
    let doc = parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert!(doc.get("warnings").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(doc.get("errors").unwrap().as_u64(), Some(0));
    std::fs::remove_file(&path).ok();
}

#[test]
fn slice_reports_slice_layers_and_admissions() {
    let layers = example("layers.dlv");
    let out = ddb()
        .args(["slice", &layers, "--query", "covered(gear)"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("split-closed: yes"), "{text}");
    assert!(text.contains("positive-exact"), "{text}");
    assert!(text.contains("condensation level"), "{text}");
    // The audit layer must not ride along in the slice itself (the layer
    // listing below it legitimately names every atom).
    let slice_part = text.split("layers:").next().unwrap();
    assert!(!slice_part.contains("audited"), "{text}");
}

#[test]
fn slice_json_has_the_documented_fields() {
    let layers = example("layers.dlv");
    let out = ddb()
        .args(["slice", &layers, "--query", "covered(gear)", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(doc.get("literal_query").cloned(), Some(Json::Bool(true)));
    assert_eq!(doc.get("split_closed").cloned(), Some(Json::Bool(true)));
    let Some(Json::Arr(admissions)) = doc.get("admissions") else {
        panic!("missing admissions array");
    };
    assert_eq!(admissions.len(), 10);
    for a in admissions {
        assert_eq!(
            a.get("admission").and_then(Json::as_str),
            Some("positive-exact")
        );
    }
    let Some(Json::Arr(rules)) = doc.get("slice_rules") else {
        panic!("missing slice_rules array");
    };
    assert!(rules.len() < 14, "slice should drop the audit layer");
}

#[test]
fn slice_reports_blocking_rule_when_not_split_closed() {
    // `z :- not c.` reads the slice atom `c` from outside the slice of
    // query `c`, so the slice is neither positive-exact nor split-closed.
    let path = temp_db("blocked", "a | b. c :- a. z :- not c. e.");
    let out = ddb()
        .args(["slice", &path, "--query", "c"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("split-closed: no"), "{text}");
    assert!(text.contains("blocked by rule"), "{text}");
    assert!(text.contains("blocked (generic fallback)"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_reports_every_unsafe_rule_in_rule_order() {
    // Three unsafe rules among safe ones: the report must carry one
    // DDB001 per offending rule with its rule position, in ascending
    // rule order, so the (code, position) ordering is stable however
    // many rules a file has. Before safety diagnostics carried
    // positions, only the first violation surfaced.
    let path = std::env::temp_dir().join(format!(
        "ddb_cli_check_unsafe_multi_{}.dlv",
        std::process::id()
    ));
    std::fs::write(
        &path,
        "p(X).\nq(a) :- r(a).\ns(Y) :- t(a), not u(Y).\nw(Z).\n",
    )
    .unwrap();
    let p = path.to_str().unwrap();

    let out = ddb().args(["check", p]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let positions: Vec<usize> = text
        .lines()
        .filter(|l| l.contains("[DDB001]"))
        .map(|l| {
            let rest = l
                .split("rule ")
                .nth(1)
                .expect("DDB001 line carries a rule position");
            rest.split(':').next().unwrap().trim().parse().unwrap()
        })
        .collect();
    assert_eq!(
        positions,
        vec![0, 2, 3],
        "one finding per unsafe rule, in rule order: {text}"
    );
    for var in ["`X`", "`Y`", "`Z`"] {
        assert!(text.contains(var), "missing variable {var}: {text}");
    }

    let out = ddb().args(["check", p, "--json"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let doc = parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(doc.get("errors").and_then(Json::as_u64), Some(3));
    let Some(Json::Arr(diags)) = doc.get("diagnostics") else {
        panic!("missing diagnostics array");
    };
    let rules: Vec<u64> = diags
        .iter()
        .map(|d| d.get("rule").and_then(Json::as_u64).expect("rule position"))
        .collect();
    assert_eq!(rules, vec![0, 2, 3]);
    std::fs::remove_file(&path).ok();
}
