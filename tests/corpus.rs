//! Regression corpus: curated programs with *pinned* characteristic-model
//! counts for every semantics. Any behavioural drift in any decision
//! procedure trips this table.
//!
//! Counts were derived from the engine once and hand-verified (see the
//! inline notes for the interesting rows); `None` marks semantics
//! undefined for the program's class (DDR/PWS need negation-free input,
//! ICWA needs stratifiability). PDSM counts its *total* models here
//! (the dispatch convention).

use disjunctive_db::prelude::*;

/// Counts in `SemanticsId::ALL` order:
/// GCWA, DDR, PWS, EGCWA, CCWA, ECWA, ICWA, PERF, DSM, PDSM.
type Row = (&'static str, [Option<usize>; 10]);

const CORPUS: &[Row] = &[
    // Plain disjunction: EGCWA/ECWA/... see 2 minimal models; GCWA keeps
    // all 3 (no atom is false in every minimal model); CCWA defaults to
    // the GCWA partition.
    (
        "a | b.",
        [
            Some(3),
            Some(3),
            Some(3),
            Some(2),
            Some(3),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
        ],
    ),
    // The GCWA-vs-DDR separator: GCWA closes c, DDR keeps all 5 models,
    // PWS sits in between with 3 possible models.
    (
        "a | b. c :- a, b.",
        [
            Some(2),
            Some(5),
            Some(3),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
        ],
    ),
    // Exclusive disjunction: the integrity clause makes all semantics
    // coincide.
    (
        "a | b. :- a, b.",
        [
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
        ],
    ),
    // Odd cycle of disjunctions: 3 minimal models of size 2 (one per
    // pair), 4 classical models.
    (
        "a | b. b | c. c | a.",
        [
            Some(4),
            Some(4),
            Some(4),
            Some(3),
            Some(4),
            Some(3),
            Some(3),
            Some(3),
            Some(3),
            Some(3),
        ],
    ),
    // The even negative loop: unstratifiable (ICWA n/a), PERF empty
    // (mutual strict priorities), two stable models.
    (
        "win :- not lose. lose :- not win.",
        [
            Some(3),
            None,
            None,
            Some(2),
            Some(3),
            Some(2),
            None,
            Some(0),
            Some(2),
            Some(2),
        ],
    ),
    // Even loop with a derived consequence.
    (
        "a :- not b. b :- not a. c :- a. c :- b.",
        [
            Some(3),
            None,
            None,
            Some(2),
            Some(3),
            Some(2),
            None,
            Some(0),
            Some(2),
            Some(2),
        ],
    ),
    // Stratified: unique perfect/stable/ICWA model {d, a or b}… one rule
    // chain: c blocked by d's absence? c :- not d fires → c; a|b blocked
    // by c → single stable pair set of 1: counts say 1.
    (
        "a | b :- not c. c :- not d.",
        [
            Some(11),
            None,
            None,
            Some(3),
            Some(11),
            Some(3),
            Some(1),
            Some(1),
            Some(1),
            Some(1),
        ],
    ),
    // Stratified with a disjunctive tail.
    (
        "p. q :- p, not r. s | t :- q.",
        [
            Some(10),
            None,
            None,
            Some(3),
            Some(10),
            Some(3),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
        ],
    ),
    // Overlapping disjunctions with a global integrity clause.
    (
        "n1 | n2. n2 | n3. :- n1, n2, n3.",
        [
            Some(4),
            Some(4),
            Some(4),
            Some(2),
            Some(4),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            Some(2),
        ],
    ),
    // Odd loop (forces a classically) next to a free disjunction: DSM and
    // total-PDSM die, PERF survives with both minimal models.
    (
        "a :- not a. b | c.",
        [
            Some(3),
            None,
            None,
            Some(2),
            Some(3),
            Some(2),
            None,
            Some(2),
            Some(0),
            Some(0),
        ],
    ),
];

#[test]
fn corpus_model_counts_are_stable() {
    for (src, expected) in CORPUS {
        let db = parse_program(src).unwrap();
        for (id, want) in SemanticsId::ALL.iter().zip(expected) {
            let cfg = SemanticsConfig::new(*id);
            let mut cost = Cost::new();
            let got = cfg.models(&db, &mut cost).ok().map(|m| m.len());
            assert_eq!(got, *want, "{id} on `{src}`");
        }
    }
}

#[test]
fn corpus_existence_consistent_with_counts() {
    for (src, expected) in CORPUS {
        let db = parse_program(src).unwrap();
        for (id, want) in SemanticsId::ALL.iter().zip(expected) {
            // PDSM existence quantifies over *partial* stable models,
            // while the pinned counts are its total models — an odd loop
            // has a ½-valued partial stable model but zero totals, so the
            // equivalence below deliberately skips PDSM.
            if *id == SemanticsId::Pdsm {
                continue;
            }
            let cfg = SemanticsConfig::new(*id);
            let mut cost = Cost::new();
            if let (Ok(has), Some(count)) = (cfg.has_model(&db, &mut cost), want) {
                assert_eq!(has, *count > 0, "{id} on `{src}`");
            }
        }
    }
}

#[test]
fn corpus_inference_vacuity() {
    // Where the model count is 0, cautious inference is vacuous and brave
    // inference is empty — across the corpus.
    use disjunctive_db::core::witness;
    for (src, expected) in CORPUS {
        let db = parse_program(src).unwrap();
        let f = Formula::atom(Atom::new(0));
        for (id, want) in SemanticsId::ALL.iter().zip(expected) {
            // See corpus_existence_consistent_with_counts: PDSM's
            // cautious/brave inference ranges over partial models.
            if *want != Some(0) || *id == SemanticsId::Pdsm {
                continue;
            }
            let cfg = SemanticsConfig::new(*id);
            let mut cost = Cost::new();
            assert!(
                cfg.infers_formula(&db, &f, &mut cost).unwrap().definite(),
                "{id} on `{src}`"
            );
            assert!(
                !witness::brave_infers_formula(&cfg, &db, &f, &mut cost)
                    .unwrap()
                    .definite(),
                "{id} on `{src}`"
            );
        }
    }
}
