//! End-to-end checks of the resource-limit surface of the `ddb` binary:
//! the exit-code contract (4 = usage/parse/IO, 3 = resource-exhausted),
//! diagnostics on stderr, deterministic oracle-budget exhaustion, the
//! wall-clock timeout on a Σᵖ₂-hard instance, per-cell profile budgets,
//! and the budget fields of the `--trace-json` document.

use ddb_reductions::dsm_hardness::exists_forall_to_dsm_existence;
use ddb_reductions::gcwa_hardness::forall_exists_to_gcwa;
use ddb_reductions::qbf::parity_family;
use disjunctive_db::obs::json::{parse, Json};
use disjunctive_db::prelude::display_database;
use std::process::Command;
use std::time::{Duration, Instant};

fn ddb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddb"))
}

fn temp_file(name: &str, contents: &str) -> String {
    let path =
        std::env::temp_dir().join(format!("ddb_cli_govern_{name}_{}.dl", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path.to_str().unwrap().to_owned()
}

fn exit_code(cmd: &mut Command) -> i32 {
    cmd.output().expect("running ddb").status.code().unwrap()
}

#[test]
fn usage_parse_and_io_failures_exit_four() {
    // Unknown subcommand.
    assert_eq!(exit_code(ddb().args(["frobnicate"])), 4);
    // Unreadable input file.
    assert_eq!(
        exit_code(ddb().args(["query", "/nonexistent/nope.dl", "--literal", "a"])),
        4
    );
    // Malformed resource-limit value.
    let path = temp_file("usage", "a | b.");
    let out = ddb()
        .args(["exists", &path, "--timeout-ms", "xyz"])
        .output()
        .unwrap();
    assert_eq!(out.status.code().unwrap(), 4);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("timeout-ms"), "diagnostic on stderr: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_exit_codes_are_not_disturbed_by_the_new_contract() {
    // `ddb check` keeps its 0/1/2 contract; only 3 and 4 are new.
    assert_eq!(exit_code(ddb().args(["check", "/nonexistent/nope.dl"])), 2);
}

#[test]
fn zero_oracle_budget_exhausts_deterministically() {
    let inst = forall_exists_to_gcwa(&parity_family(6));
    let w = format!("-{}", inst.db.symbols().name(inst.w));
    let path = temp_file("oracle", &display_database(&inst.db));
    let out = ddb()
        .args([
            "query",
            &path,
            "--semantics",
            "gcwa",
            "--literal",
            &w,
            "--max-oracle-calls",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code().unwrap(), 3, "resource-exhausted exit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unknown"), "three-valued answer: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("oracle_calls"),
        "stderr names the exhausted resource: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn timeout_on_sigma2_hard_existence_is_prompt() {
    // DSM existence on the complement parity family is Σᵖ₂-hard; with a
    // 100 ms deadline the run must degrade to Unknown and exit 3 well
    // within the 2 s promptness bound (checkpoints are sprinkled through
    // the SAT conflict loop and the stable-model candidate search).
    let inst = exists_forall_to_dsm_existence(&parity_family(12).complement());
    let path = temp_file("timeout", &display_database(&inst.db));
    let started = Instant::now();
    let out = ddb()
        .args(["exists", &path, "--semantics", "dsm", "--timeout-ms", "100"])
        .output()
        .unwrap();
    let elapsed = started.elapsed();
    assert_eq!(out.status.code().unwrap(), 3, "resource-exhausted exit");
    assert!(
        elapsed < Duration::from_secs(2),
        "interruption must be prompt, took {elapsed:?}"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("unknown"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn budgeted_profile_completes_the_matrix_with_interrupted_cells() {
    let inst = forall_exists_to_gcwa(&parity_family(8));
    let path = temp_file("profile", &display_database(&inst.db));
    let out = ddb()
        .args(["profile", &path, "--cell-timeout-ms", "1"])
        .output()
        .unwrap();
    // The sweep itself succeeds: slow cells are marked, not fatal.
    assert_eq!(out.status.code().unwrap(), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("?deadline"),
        "Πᵖ₂ cells cannot finish in 1 ms: {stdout}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_json_carries_interruption_and_consumption() {
    let inst = forall_exists_to_gcwa(&parity_family(6));
    let w = format!("-{}", inst.db.symbols().name(inst.w));
    let path = temp_file("trace", &display_database(&inst.db));
    let trace =
        std::env::temp_dir().join(format!("ddb_cli_govern_trace_{}.json", std::process::id()));
    let status = ddb()
        .args([
            "query",
            &path,
            "--semantics",
            "gcwa",
            "--literal",
            &w,
            "--max-oracle-calls",
            "0",
            "--trace-json",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(status.status.code().unwrap(), 3);
    let doc = parse(&std::fs::read_to_string(&trace).unwrap()).expect("valid trace JSON");
    assert_eq!(
        doc.get("interrupted").and_then(Json::as_str),
        Some("oracle_calls")
    );
    assert_eq!(doc.get("answer").cloned(), Some(Json::Null));
    let consumed = doc.get("budget_consumed").expect("consumption snapshot");
    assert_eq!(consumed.get("oracle_calls").and_then(Json::as_u64), Some(1));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&trace).ok();
}
