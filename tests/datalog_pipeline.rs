//! Full-stack Datalog∨ integration: the classic *win–move game*, the
//! canonical well-founded-semantics example, through grounding and every
//! relevant semantics.
//!
//! A position wins iff it has a move to a losing (non-winning) position:
//! `win(X) ← move(X,Y) ∧ ¬win(Y)`. Positions on a path are determined
//! (alternating lost/won); positions in an escape-free cycle are *drawn*
//! — exactly the ½ values of WFS and the undefined atoms of PDSM, and
//! exactly where the stable models multiply.

use disjunctive_db::core::{dsm, pdsm, wfs};
use disjunctive_db::ground::{ground_full, ground_reduced, parse::parse_datalog};
use disjunctive_db::prelude::*;

/// Board: a path c←b←a (a moves to b, b moves to c, c stuck) plus an
/// isolated 2-cycle d ⇄ e.
const GAME: &str = "
    move(a,b). move(b,c).
    move(d,e). move(e,d).
    win(X) :- move(X,Y), not win(Y).
";

fn win_atom(db: &Database, pos: &str) -> Atom {
    db.symbols()
        .lookup(&format!("win({pos})"))
        .unwrap_or_else(|| panic!("win({pos}) not in grounding"))
}

#[test]
fn win_move_well_founded_values() {
    let prog = parse_datalog(GAME).unwrap();
    let db = ground_reduced(&prog, 10_000).unwrap();
    let w = wfs::well_founded_model(&db);
    // Path: c is stuck (win(c) not even grounded or false), b wins, a loses.
    assert_eq!(w.value(win_atom(&db, "b")), TruthValue::True);
    assert_eq!(w.value(win_atom(&db, "a")), TruthValue::False);
    // win(c) has no move at all — reduced grounding never creates it.
    assert!(db.symbols().lookup("win(c)").is_none());
    // Cycle: drawn — undefined on both sides.
    assert_eq!(w.value(win_atom(&db, "d")), TruthValue::Undefined);
    assert_eq!(w.value(win_atom(&db, "e")), TruthValue::Undefined);
}

#[test]
fn win_move_stable_models_split_the_draw() {
    let prog = parse_datalog(GAME).unwrap();
    let db = ground_reduced(&prog, 10_000).unwrap();
    let mut cost = Cost::new();
    let stable = dsm::models(&db, &mut cost).unwrap();
    // The path part is fixed; the 2-cycle gives two stable resolutions
    // (d wins & e loses, or vice versa).
    assert_eq!(stable.len(), 2);
    let d = win_atom(&db, "d");
    let e = win_atom(&db, "e");
    let b = win_atom(&db, "b");
    let a = win_atom(&db, "a");
    for m in &stable {
        assert!(m.contains(b));
        assert!(!m.contains(a));
        assert_ne!(m.contains(d), m.contains(e), "cycle resolves exclusively");
    }
    // Cautious consequences across stable models agree with WFS's
    // determined part.
    let (t, f) = dsm::cautious_literals(&db, &mut cost).unwrap().unwrap();
    assert!(t.contains(b));
    assert!(f.contains(a));
    assert!(!t.contains(d) && !f.contains(d));
}

#[test]
fn win_move_pdsm_contains_wfs() {
    let prog = parse_datalog(GAME).unwrap();
    let db = ground_reduced(&prog, 10_000).unwrap();
    let w = wfs::well_founded_model(&db);
    let mut cost = Cost::new();
    let partials = pdsm::models(&db, &mut cost).unwrap();
    // WFS is one of the partial stable models (the knowledge-least one);
    // the two stable resolutions of the cycle are the total ones.
    assert!(partials.contains(&w));
    assert_eq!(partials.iter().filter(|p| p.is_total()).count(), 2);
    assert_eq!(partials.len(), 3);
}

#[test]
fn win_move_full_and_reduced_groundings_agree_on_stable_semantics() {
    let prog = parse_datalog(GAME).unwrap();
    let full = ground_full(&prog, 100_000).unwrap();
    let reduced = ground_reduced(&prog, 100_000).unwrap();
    let mut cost = Cost::new();
    let name_sets = |db: &Database, models: Vec<Interpretation>| {
        models
            .into_iter()
            .map(|m| {
                let mut v: Vec<String> =
                    m.iter().map(|a| db.symbols().name(a).to_owned()).collect();
                v.sort();
                v
            })
            .collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(
        name_sets(&full, dsm::models(&full, &mut cost).unwrap()),
        name_sets(&reduced, dsm::models(&reduced, &mut cost).unwrap())
    );
}

#[test]
fn win_move_queries_through_dispatch() {
    let prog = parse_datalog(GAME).unwrap();
    let db = ground_reduced(&prog, 10_000).unwrap();
    let mut cost = Cost::new();
    let cfg = SemanticsConfig::new(SemanticsId::Dsm);
    let win_b = Formula::atom(win_atom(&db, "b"));
    let win_d = Formula::atom(win_atom(&db, "d"));
    assert!(cfg
        .infers_formula(&db, &win_b, &mut cost)
        .unwrap()
        .definite());
    assert!(!cfg
        .infers_formula(&db, &win_d, &mut cost)
        .unwrap()
        .definite());
    assert!(cfg
        .brave_infers_formula(&db, &win_d, &mut cost)
        .unwrap()
        .definite());
    // The drawn disjunction holds cautiously: in every stable model,
    // exactly one of d/e wins.
    let either = Formula::or([win_d.clone(), Formula::atom(win_atom(&db, "e"))]);
    assert!(cfg
        .infers_formula(&db, &either, &mut cost)
        .unwrap()
        .definite());
    // …but under PDSM it does not (value ½ in the well-founded model).
    let pdsm_cfg = SemanticsConfig::new(SemanticsId::Pdsm);
    assert!(!pdsm_cfg
        .infers_formula(&db, &either, &mut cost)
        .unwrap()
        .definite());
}
